//! The resumable per-replica event loop.
//!
//! [`ReplicaEngine`] is the continuous-batching scheduler of **one**
//! serving replica, factored out of the monolithic `ServeInstance::run`
//! so it can be driven two ways:
//!
//! * **batch** — push an entire trace, [`ReplicaEngine::finish`], read
//!   the report (the single-replica [`crate::ServeInstance::simulate`]
//!   path);
//! * **stepped** — interleave [`ReplicaEngine::push`] with
//!   [`ReplicaEngine::advance_to`] so an online router can observe live
//!   queue depth and outstanding work *at each arrival instant* before
//!   deciding which replica receives the request (the
//!   [`crate::FleetInstance`] path). State-aware routing policies are
//!   exactly why the engine is steppable rather than trace-split: the
//!   decision for request *n* depends on simulated state that requests
//!   `0..n` produced.
//!
//! Stepping semantics: an iteration is indivisible and starts whenever
//! the previous one ends — a real server cannot consult future arrivals —
//! so `advance_to(t)` runs every iteration that *starts* before `t` and
//! may leave the clock past `t` (mid-iteration overshoot). An idle engine
//! never invents work: it jumps its clock forward only to the next queued
//! arrival within the target.

use crate::faults::EngineFaults;
use crate::sim::{ServeError, ServeInstance, TraceBounds};
use crate::stats::LatencyAccumulator;
use crate::{
    PagingReport, PreemptPolicy, QueueSample, Request, RequestMetrics, Scheduler, SloSpec,
    MAX_QUEUE_SAMPLES,
};
use optimus_infer::DecodeCostTable;
use optimus_units::{Bytes, Time};
use std::collections::VecDeque;

/// An admitted request's in-flight state (slot-arena entry, recycled at
/// completion).
struct Slot {
    request: Request,
    admitted_s: f64,
    prefill_dur_s: f64,
    first_token_s: f64,
    reserved: Bytes,
    // Paged-mode state (all zero on the legacy reserved path).
    /// Prompt tokens the next prefill actually prices (the full prompt,
    /// minus any resident shared-prefix blocks skipped on a cache hit).
    prefill_tokens: usize,
    /// Private device blocks held (excludes refcounted prefix blocks).
    blocks: usize,
    /// Blocks borrowed from this request's resident prefix entry.
    shared_blocks: usize,
    /// Decode tokens produced so far (reset to zero by a recompute
    /// preemption, preserved by a swap).
    generated: usize,
    /// Calendar ring position this slot's completion is filed under, so
    /// preemption can withdraw it in O(ring-slot).
    due_ring: usize,
}

/// Streaming aggregation of completion events: latency accumulators plus
/// the scalar counters, and (when enabled) the per-request records.
pub(crate) struct CompletionSink {
    slo: SloSpec,
    records_on: bool,
    pub(crate) records: Vec<RequestMetrics>,
    pub(crate) ttft: LatencyAccumulator,
    pub(crate) tpot: LatencyAccumulator,
    pub(crate) e2e: LatencyAccumulator,
    pub(crate) completed: usize,
    pub(crate) generated_tokens: usize,
    pub(crate) met: usize,
    pub(crate) met_tokens: usize,
}

impl CompletionSink {
    fn new(slo: SloSpec, expected: usize, records_on: bool) -> Self {
        Self {
            slo,
            records_on,
            records: Vec::new(),
            ttft: LatencyAccumulator::for_population(expected),
            tpot: LatencyAccumulator::for_population(expected),
            e2e: LatencyAccumulator::for_population(expected),
            completed: 0,
            generated_tokens: 0,
            met: 0,
            met_tokens: 0,
        }
    }

    /// Folds one completed request into the aggregates.
    fn complete(&mut self, slot: &Slot, completed_s: f64) {
        let r = &slot.request;
        let first = slot.first_token_s;
        let ttft = first - r.arrival_s;
        let e2e = completed_s - r.arrival_s;
        let tpot =
            (r.output > 1).then(|| Time::from_secs((completed_s - first) / (r.output - 1) as f64));
        let met_slo =
            Time::from_secs(ttft) <= self.slo.ttft && tpot.is_none_or(|t| t <= self.slo.tpot);
        self.ttft.record(Time::from_secs(ttft));
        self.e2e.record(Time::from_secs(e2e));
        if let Some(t) = tpot {
            self.tpot.record(t);
        }
        self.completed += 1;
        self.generated_tokens += r.output;
        if met_slo {
            self.met += 1;
            self.met_tokens += r.output;
        }
        if self.records_on {
            self.records.push(RequestMetrics {
                id: r.id,
                prompt: r.prompt,
                generated: r.output,
                arrival: Time::from_secs(r.arrival_s),
                queue_wait: Time::from_secs(slot.admitted_s - r.arrival_s),
                prefill: Time::from_secs(slot.prefill_dur_s),
                ttft: Time::from_secs(ttft),
                e2e: Time::from_secs(e2e),
                tpot,
                met_slo,
            });
        }
    }
}

/// Everything one engine hands to report assembly.
pub(crate) struct ReportInputs {
    pub(crate) sink: CompletionSink,
    pub(crate) rejected_ids: Vec<usize>,
    pub(crate) makespan_s: f64,
    pub(crate) kv_peak: Bytes,
    pub(crate) prefill_iterations: usize,
    pub(crate) decode_iterations: usize,
    pub(crate) decode_batch_sum: usize,
    pub(crate) queue_area: f64,
    pub(crate) peak_waiting: usize,
    pub(crate) peak_decoding: usize,
    pub(crate) raw_samples: Vec<QueueSample>,
    /// Block/prefix/preemption accounting — `Some` exactly when the
    /// engine ran a paged [`crate::KvSpec`].
    pub(crate) paging: Option<PagingReport>,
}

/// One shared prefix's residency in the device block pool. Entries are
/// indexed by [`crate::Prefix::id`]; a non-resident entry holds no
/// blocks. Residency survives its last reference (that is the cache) —
/// eviction happens only when an allocation needs the blocks, idle
/// entries first in least-recently-used order.
#[derive(Clone, Default)]
struct PrefixEntry {
    resident: bool,
    blocks: usize,
    refs: usize,
    last_use: usize,
}

/// One replica's resumable scheduler state. See the module docs for the
/// batch/stepped driving modes.
pub(crate) struct ReplicaEngine<'i, 'a> {
    instance: &'i ServeInstance<'a>,
    table: Option<&'i DecodeCostTable>,
    budget: Bytes,

    // Dense prefill-duration cache by prompt length: each distinct
    // admittable prompt is priced once per engine, lock-free after.
    prefill_cache: Vec<f64>,

    // Completion ring: requests joining the decode batch with `n` output
    // tokens complete exactly `n` decode epochs later.
    calendar: Vec<Vec<u32>>,
    decode_epoch: usize,

    // The engine's trace: in batch mode the whole input, in stepped mode
    // whatever the router has assigned so far. `eff` runs parallel to it
    // with the *effective* (engine-observed, nondecreasing) arrival time:
    // the original arrival for first-routed requests, the requeue instant
    // for requests re-assigned after a crash. Metrics always use the
    // request's own `arrival_s`.
    trace: Vec<Request>,
    eff: Vec<f64>,
    arrived: usize,      // trace[..arrived] have arrived (eff ≤ clock)
    admit_cursor: usize, // trace[admit_cursor..arrived] queue for admission
    assigned: usize,     // total assignments ever (requeues drop `trace`)

    clock: f64,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    awaiting_prefill: VecDeque<u32>,
    pending_first: Vec<u32>,
    decoding_count: usize,
    ctx_sum: usize, // Σ (prompt + generated) over decoding
    rejected_ids: Vec<usize>,
    sink: CompletionSink,

    reserved: Bytes,
    kv_peak: Bytes,
    prefill_iterations: usize,
    decode_iterations: usize,
    decode_batch_sum: usize,
    queue_area: f64, // ∫ waiting dt
    peak_waiting: usize,
    peak_decoding: usize,
    // Queue-depth samples are thinned online (keep-every-other + stride
    // doubling once 2×MAX_QUEUE_SAMPLES accumulate), so memory stays
    // O(MAX_QUEUE_SAMPLES) however long the trace runs.
    raw_samples: Vec<QueueSample>,
    sample_stride: usize,
    iteration: usize,

    // Fault wiring (`None` on the fault-free path): the outage windows
    // the clock drains through, the router's availability cursor, and the
    // requests lost to crashes since the driver last collected them.
    faults: Option<EngineFaults>,
    slow_mult: f64,
    requeued: Vec<(Request, f64)>,

    // --- paged-KV / scheduler state -------------------------------------
    // `legacy` is the reserved-KV + FIFO fast path: it runs the original
    // cursor admission and plain decode verbatim (bitwise identity with
    // pre-paging builds) and never touches anything below.
    legacy: bool,
    paged: bool,
    scheduler: Scheduler,
    policy: PreemptPolicy,
    block_tokens: usize,
    total_blocks: usize,
    used_blocks: usize,
    peak_blocks: usize,
    // Arrived-but-unadmitted requests, reordered by the scheduler pick
    // (the generalized replacement for the legacy admission cursor).
    pending: VecDeque<Request>,
    // Recompute-preempted slots waiting to re-prefill, FIFO.
    preempted: VecDeque<u32>,
    // Swap-preempted slots parked on the host, FIFO.
    swapped: VecDeque<u32>,
    // Swapped slots whose blocks are re-allocated, each waiting for its
    // swap-in iteration (served before prefills).
    awaiting_swapin: VecDeque<u32>,
    // Decoding slots in join order — the preemption victim order.
    active: Vec<u32>,
    prefix_cache: Vec<PrefixEntry>,
    preemptions: usize,
    swap_outs: usize,
    swap_ins: usize,
    swap_bytes: Bytes,
    prefix_hits: usize,
    prefix_misses: usize,
    prefix_evictions: usize,
    cached_tokens_saved: usize,
}

impl<'i, 'a> ReplicaEngine<'i, 'a> {
    /// A fresh engine over `instance`, sized by `bounds` (which must cover
    /// every request this engine will ever be pushed). `expected` sizes
    /// the latency accumulators' exact/streaming regime choice — fleet
    /// drivers pass the *whole* trace length so every replica picks the
    /// same regime and their populations merge loss-free.
    pub(crate) fn new(
        instance: &'i ServeInstance<'a>,
        table: Option<&'i DecodeCostTable>,
        bounds: &TraceBounds,
        expected: usize,
        records_on: bool,
        faults: Option<EngineFaults>,
    ) -> Self {
        let ring_len = bounds.max_kv.max(1) + 1; // ≥ max_output + 1
        let slow_mult = faults.as_ref().map_or(1.0, |f| f.slow_mult);
        let config = instance.config();
        let paged = !config.kv.is_reserved();
        Self {
            legacy: !paged && config.scheduler == Scheduler::Fifo,
            paged,
            scheduler: config.scheduler,
            policy: config.kv.policy,
            block_tokens: config.kv.block_tokens,
            total_blocks: if paged { instance.total_blocks() } else { 0 },
            used_blocks: 0,
            peak_blocks: 0,
            pending: VecDeque::new(),
            preempted: VecDeque::new(),
            swapped: VecDeque::new(),
            awaiting_swapin: VecDeque::new(),
            active: Vec::new(),
            prefix_cache: Vec::new(),
            preemptions: 0,
            swap_outs: 0,
            swap_ins: 0,
            swap_bytes: Bytes::ZERO,
            prefix_hits: 0,
            prefix_misses: 0,
            prefix_evictions: 0,
            cached_tokens_saved: 0,
            instance,
            table,
            budget: instance.kv_budget(),
            prefill_cache: vec![f64::NAN; bounds.max_prompt + 1],
            calendar: vec![Vec::new(); ring_len],
            decode_epoch: 0,
            trace: Vec::new(),
            eff: Vec::new(),
            arrived: 0,
            admit_cursor: 0,
            assigned: 0,
            clock: 0.0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            awaiting_prefill: VecDeque::new(),
            pending_first: Vec::new(),
            decoding_count: 0,
            ctx_sum: 0,
            rejected_ids: Vec::new(),
            sink: CompletionSink::new(instance.config().slo, expected, records_on),
            reserved: Bytes::ZERO,
            kv_peak: Bytes::ZERO,
            prefill_iterations: 0,
            decode_iterations: 0,
            decode_batch_sum: 0,
            queue_area: 0.0,
            peak_waiting: 0,
            peak_decoding: 0,
            raw_samples: Vec::new(),
            sample_stride: 1,
            iteration: 0,
            faults,
            slow_mult,
            requeued: Vec::new(),
        }
    }

    /// Assigns one request to this replica. Requests must be pushed in
    /// arrival order.
    pub(crate) fn push(&mut self, request: Request) {
        debug_assert!(
            self.trace
                .last()
                .is_none_or(|prev| prev.arrival_s <= request.arrival_s),
            "requests must be pushed in arrival order"
        );
        self.eff.push(request.arrival_s);
        self.trace.push(request);
        self.assigned += 1;
    }

    /// Assigns one request at router-observed time `at_s` — the churn
    /// path. The request keeps its own `arrival_s` for every metric; the
    /// engine first sees it at `at_s` (clamped so effective arrivals stay
    /// nondecreasing), which is how a requeued request re-enters a queue
    /// later than it originally arrived.
    pub(crate) fn push_at(&mut self, request: Request, at_s: f64) {
        let eff = self.eff.last().map_or(at_s, |&prev| prev.max(at_s));
        self.eff.push(eff);
        self.trace.push(request);
        self.assigned += 1;
    }

    /// Whether the replica's outage schedule has it up at `t` — the
    /// router's skip-down-replicas query. `t` must be nondecreasing
    /// across calls (the router's clock is monotone).
    pub(crate) fn available(&mut self, t: f64) -> bool {
        self.faults.as_mut().is_none_or(|f| !f.query.down_at(t))
    }

    /// The earliest instant ≥ `t` at which the replica's schedule has it
    /// up again.
    pub(crate) fn next_up(&mut self, t: f64) -> f64 {
        self.faults.as_mut().map_or(t, |f| f.query.next_up(t))
    }

    /// Takes the requests crashes have drained since the last call, each
    /// paired with the instant its replica dropped it.
    pub(crate) fn take_requeued(&mut self) -> Vec<(Request, f64)> {
        core::mem::take(&mut self.requeued)
    }

    /// Requests with **no compute yet**: routed but unadmitted (queued for
    /// KV space) plus admitted but still awaiting their prefill iteration.
    /// On the generalized path, preempted and swapped-out victims count
    /// too — they hold no device compute until re-admitted. After
    /// `advance_to(t)`, this is exactly the waiting population a
    /// join-shortest-queue router should see at time `t`.
    pub(crate) fn waiting(&self) -> usize {
        (self.trace.len() - self.admit_cursor)
            + self.queued_backlog()
            + self.awaiting_prefill.len()
            + self.awaiting_swapin.len()
    }

    /// The generalized path's queued-but-unserved population beyond the
    /// admission cursor: scheduler-queued requests plus preemption
    /// victims awaiting re-admission. Zero on the legacy path, whose
    /// backlog lives entirely behind `admit_cursor`.
    fn queued_backlog(&self) -> usize {
        self.pending.len() + self.preempted.len() + self.swapped.len()
    }

    /// Requests routed to this replica and not yet completed — waiting or
    /// decoding. The least-outstanding router's load signal.
    pub(crate) fn outstanding(&self) -> usize {
        self.waiting() + self.decoding_count
    }

    /// Runs every iteration that starts before `target`. On return either
    /// the clock has reached (or overshot) `target`, or the engine is idle
    /// with no queued arrival before `target`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when iteration pricing fails
    /// (unsupported precision).
    pub(crate) fn advance_to(&mut self, target: f64) -> Result<(), ServeError> {
        loop {
            if self.faults.is_some() {
                self.process_outages();
            }
            while self.arrived < self.trace.len() && self.eff[self.arrived] <= self.clock {
                self.arrived += 1;
            }
            if self.legacy {
                while self.admit_cursor < self.arrived {
                    let front = &self.trace[self.admit_cursor];
                    let need = self.instance.reservation(front);
                    if need > self.budget {
                        // Could never be admitted, not even alone: drop it
                        // rather than block every request behind it forever.
                        self.rejected_ids.push(front.id);
                        self.admit_cursor += 1;
                        continue;
                    }
                    if self.reserved + need <= self.budget {
                        self.reserved += need;
                        self.kv_peak = self.kv_peak.max(self.reserved);
                        let slot = Slot {
                            request: *front,
                            admitted_s: self.clock,
                            prefill_dur_s: 0.0,
                            first_token_s: 0.0,
                            reserved: need,
                            prefill_tokens: front.prompt,
                            blocks: 0,
                            shared_blocks: 0,
                            generated: 0,
                            due_ring: 0,
                        };
                        let idx = self.alloc_slot(slot);
                        self.awaiting_prefill.push_back(idx);
                        self.admit_cursor += 1;
                    } else {
                        break;
                    }
                }
            } else {
                self.admit_generalized();
            }
            let pending_len = (self.arrived - self.admit_cursor) + self.queued_backlog();

            if self.awaiting_prefill.is_empty()
                && self.awaiting_swapin.is_empty()
                && self.decoding_count == 0
            {
                assert!(
                    pending_len == 0,
                    "an idle instance always admits the queue head"
                );
                if self.arrived >= self.trace.len() {
                    return Ok(()); // idle, nothing queued: wait for pushes
                }
                let next = self.eff[self.arrived];
                if next > target {
                    return Ok(()); // next arrival is beyond the target
                }
                self.clock = self.clock.max(next);
                continue;
            }
            if self.clock >= target {
                return Ok(());
            }

            // The waiting population over this iteration: arrived but no
            // compute yet — whether blocked on KV admission or on a
            // prefill slot. The request prefilled (or swapped back in)
            // this very iteration stops waiting now, so it is not
            // counted; `peak_waiting` observes the same population as the
            // time-weighted mean.
            let serving_one = !self.awaiting_swapin.is_empty() || !self.awaiting_prefill.is_empty();
            let waiting_before =
                pending_len + self.awaiting_prefill.len() + self.awaiting_swapin.len()
                    - usize::from(serving_one);
            self.peak_waiting = self.peak_waiting.max(waiting_before);
            let dur = if let Some(idx) = self.awaiting_swapin.pop_front() {
                self.swap_in(idx)
            } else if let Some(idx) = self.awaiting_prefill.pop_front() {
                self.prefill(idx)?
            } else {
                self.decode()?
            };
            self.clock += dur;
            self.queue_area += waiting_before as f64 * dur;
            self.peak_decoding = self.peak_decoding.max(self.decoding_count);
            if self.iteration.is_multiple_of(self.sample_stride) {
                // The sample observes the *end* of the iteration, so it
                // must count every request that arrived while the
                // iteration ran — advance the arrival cursor to the new
                // clock before reading the waiting depth.
                while self.arrived < self.trace.len() && self.eff[self.arrived] <= self.clock {
                    self.arrived += 1;
                }
                self.raw_samples.push(QueueSample {
                    at: Time::from_secs(self.clock),
                    waiting: (self.arrived - self.admit_cursor)
                        + self.queued_backlog()
                        + self.awaiting_prefill.len()
                        + self.awaiting_swapin.len(),
                    decoding: self.decoding_count,
                });
                if self.raw_samples.len() >= 2 * MAX_QUEUE_SAMPLES {
                    let mut keep = 0;
                    self.raw_samples.retain(|_| {
                        keep += 1;
                        keep % 2 == 1
                    });
                    self.sample_stride *= 2;
                }
            }
            self.iteration += 1;
        }
    }

    /// Stores a slot in the arena (recycling a freed index when one
    /// exists) and returns its index.
    fn alloc_slot(&mut self, slot: Slot) -> u32 {
        if let Some(free) = self.free_slots.pop() {
            self.slots[free as usize] = slot;
            free
        } else {
            self.slots.push(slot);
            u32::try_from(self.slots.len() - 1).expect("slot arena fits u32")
        }
    }

    // --- generalized admission (paged KV and/or non-FIFO schedulers) ----

    /// The generalized admission round: ingest arrivals into the
    /// scheduler queue, then hand free memory to (in order) swapped-out
    /// victims, recompute victims, and finally fresh requests picked by
    /// the scheduler. Each stage is head-of-line blocked on its own
    /// queue, and victims outrank fresh admissions (the vLLM order,
    /// which keeps a victim's starvation bounded: it gets first claim on
    /// every block the batch that evicted it releases).
    fn admit_generalized(&mut self) {
        while self.admit_cursor < self.arrived {
            self.pending.push_back(self.trace[self.admit_cursor]);
            self.admit_cursor += 1;
        }
        while let Some(&idx) = self.swapped.front() {
            if !self.stage_swap_in(idx) {
                break;
            }
            self.swapped.pop_front();
        }
        while let Some(&idx) = self.preempted.front() {
            if !self.readmit_preempted(idx) {
                break;
            }
            self.preempted.pop_front();
        }
        while let Some(pos) = self.pick_pending() {
            let request = self.pending[pos];
            if !self.instance.admissible(&request) {
                // Could never run, not even alone: drop it rather than
                // block the queue forever (the legacy head rejection).
                self.rejected_ids.push(request.id);
                self.pending.remove(pos);
                continue;
            }
            if !self.try_admit(&request) {
                break; // head-of-line: the picked request waits
            }
            self.pending.remove(pos);
        }
    }

    /// The scheduler's pick: which queued request admits next. Ties
    /// always break to the earliest-queued position, so FIFO through
    /// this path reproduces the legacy cursor order exactly.
    fn pick_pending(&self) -> Option<usize> {
        match self.scheduler {
            Scheduler::Fifo => (!self.pending.is_empty()).then_some(0),
            Scheduler::Priority | Scheduler::PriorityPreempt => {
                (0..self.pending.len()).min_by_key(|&i| self.pending[i].priority)
            }
            Scheduler::Sjf => (0..self.pending.len())
                .min_by_key(|&i| self.pending[i].prompt + self.pending[i].output),
        }
    }

    /// Tries to admit one fresh request, allocating its KV (full
    /// reservation or prompt blocks, per the regime). `false` = the
    /// memory is not there yet.
    fn try_admit(&mut self, request: &Request) -> bool {
        if !self.paged {
            let need = self.instance.reservation(request);
            if self.reserved + need > self.budget {
                return false;
            }
            self.reserved += need;
            self.kv_peak = self.kv_peak.max(self.reserved);
            let idx = self.alloc_slot(Slot {
                request: *request,
                admitted_s: self.clock,
                prefill_dur_s: 0.0,
                first_token_s: 0.0,
                reserved: need,
                prefill_tokens: request.prompt,
                blocks: 0,
                shared_blocks: 0,
                generated: 0,
                due_ring: 0,
            });
            self.awaiting_prefill.push_back(idx);
            return true;
        }
        let Some((blocks, shared)) = self.alloc_prompt_blocks(request) else {
            return false;
        };
        let idx = self.alloc_slot(Slot {
            request: *request,
            admitted_s: self.clock,
            prefill_dur_s: 0.0,
            first_token_s: 0.0,
            reserved: Bytes::ZERO,
            prefill_tokens: request.prompt - shared * self.block_tokens,
            blocks,
            shared_blocks: shared,
            generated: 0,
            due_ring: 0,
        });
        self.awaiting_prefill.push_back(idx);
        true
    }

    /// Tries to re-admit a recompute victim: its prompt's blocks are
    /// allocated afresh (through any still-resident prefix) and its
    /// re-prefill queued. The slot — and with it the request's original
    /// admission instant and any already-emitted first token — survives.
    fn readmit_preempted(&mut self, idx: u32) -> bool {
        let request = self.slots[idx as usize].request;
        let Some((blocks, shared)) = self.alloc_prompt_blocks(&request) else {
            return false;
        };
        let s = &mut self.slots[idx as usize];
        s.blocks = blocks;
        s.shared_blocks = shared;
        s.prefill_tokens = request.prompt - shared * self.block_tokens;
        self.awaiting_prefill.push_back(idx);
        true
    }

    /// Allocates the blocks a prompt needs before prefill, borrowing a
    /// resident prefix's blocks when the request carries one (taking a
    /// reference and counting the hit). Returns `(private, shared)`
    /// blocks, or `None` when the pool cannot cover the private need
    /// even after evicting idle prefixes.
    fn alloc_prompt_blocks(&mut self, request: &Request) -> Option<(usize, usize)> {
        let shared = self.borrow_prefix(request);
        let need = self.instance.blocks_for(request.prompt) - shared;
        if !self.ensure_free(need) {
            self.unborrow_prefix(request, shared);
            return None;
        }
        self.alloc_blocks(need);
        if request.prefix.is_some() {
            if shared > 0 {
                self.prefix_hits += 1;
                self.cached_tokens_saved += shared * self.block_tokens;
            } else {
                self.prefix_misses += 1;
            }
        }
        Some((need, shared))
    }

    /// Takes a reference on the request's resident prefix entry (pinning
    /// it against eviction) and returns its block count — zero when the
    /// request carries no prefix or the entry is absent.
    fn borrow_prefix(&mut self, request: &Request) -> usize {
        let Some(p) = request.prefix else { return 0 };
        if self.prefix_cache.len() <= p.id {
            self.prefix_cache
                .resize_with(p.id + 1, PrefixEntry::default);
        }
        let iter = self.iteration;
        let e = &mut self.prefix_cache[p.id];
        if !e.resident {
            return 0;
        }
        e.refs += 1;
        e.last_use = iter;
        e.blocks
    }

    /// Rolls back [`ReplicaEngine::borrow_prefix`] when the allocation it
    /// pinned for could not complete.
    fn unborrow_prefix(&mut self, request: &Request, shared: usize) {
        if shared > 0 {
            let p = request.prefix.expect("shared blocks imply a prefix");
            self.prefix_cache[p.id].refs -= 1;
        }
    }

    /// Tries to stage a swapped-out victim's return: re-allocate device
    /// blocks for its full context (prompt + progress so far) and queue
    /// its swap-in iteration.
    fn stage_swap_in(&mut self, idx: u32) -> bool {
        let (request, ctx) = {
            let s = &self.slots[idx as usize];
            (s.request, s.request.prompt + s.generated)
        };
        let shared = self.borrow_prefix(&request);
        let need = self.instance.blocks_for(ctx) - shared;
        if !self.ensure_free(need) {
            self.unborrow_prefix(&request, shared);
            return false;
        }
        self.alloc_blocks(need);
        let s = &mut self.slots[idx as usize];
        s.blocks = need;
        s.shared_blocks = shared;
        self.awaiting_swapin.push_back(idx);
        true
    }

    /// One swap-in iteration: the replica stalls while the victim's
    /// private blocks stream back over the egress link, then the victim
    /// rejoins the decode batch where it left off.
    fn swap_in(&mut self, idx: u32) -> f64 {
        let blocks = self.slots[idx as usize].blocks;
        self.swap_ins += 1;
        self.swap_bytes += self.instance.block_bytes() * blocks as f64;
        self.rejoin_decode(idx);
        self.instance.swap_seconds(blocks)
    }

    /// Puts a slot (back) into the decode batch: first token at the next
    /// decode epoch if none was emitted yet, completion when the
    /// remaining output fills.
    fn rejoin_decode(&mut self, idx: u32) {
        let (ctx, remaining, first_pending) = {
            let s = &self.slots[idx as usize];
            (
                s.request.prompt + s.generated,
                s.request.output - s.generated,
                s.first_token_s == 0.0,
            )
        };
        self.decoding_count += 1;
        self.ctx_sum += ctx;
        if first_pending {
            self.pending_first.push(idx);
        }
        let due = (self.decode_epoch + remaining) % self.calendar.len();
        self.calendar[due].push(idx);
        if self.paged {
            self.slots[idx as usize].due_ring = due;
            self.active.push(idx);
        }
    }

    /// Frees capacity for `need` more blocks, evicting idle
    /// (unreferenced) resident prefixes least-recently-used first.
    /// Returns `false` when the pool still cannot cover it.
    fn ensure_free(&mut self, need: usize) -> bool {
        if need > self.total_blocks {
            return false;
        }
        while self.total_blocks - self.used_blocks < need {
            let Some(victim) = (0..self.prefix_cache.len())
                .filter(|&i| self.prefix_cache[i].resident && self.prefix_cache[i].refs == 0)
                .min_by_key(|&i| (self.prefix_cache[i].last_use, i))
            else {
                return false;
            };
            let freed = {
                let e = &mut self.prefix_cache[victim];
                e.resident = false;
                core::mem::take(&mut e.blocks)
            };
            self.used_blocks -= freed;
            self.prefix_evictions += 1;
        }
        true
    }

    /// Takes `n` blocks from the pool (capacity must be ensured first).
    fn alloc_blocks(&mut self, n: usize) {
        self.used_blocks += n;
        debug_assert!(
            self.used_blocks <= self.total_blocks,
            "block pool overdrawn"
        );
        self.peak_blocks = self.peak_blocks.max(self.used_blocks);
    }

    /// Applies every outage window the clock has reached. Crashes take
    /// effect at iteration boundaries: a window the clock lands *inside*
    /// drains the replica — all incomplete work goes back to the router —
    /// and jumps the clock to the recovery instant; a window the clock
    /// has already passed (the outage fit inside one indivisible
    /// iteration, or the engine was idle across it with nothing assigned)
    /// is ridden through without a drain.
    fn process_outages(&mut self) {
        loop {
            let Some((crash, recover)) = self.faults.as_ref().and_then(|f| f.window) else {
                return;
            };
            if self.clock < crash {
                return;
            }
            if self.clock < recover {
                self.drain_for_requeue();
                self.clock = recover;
            }
            let faults = self.faults.as_mut().expect("window implies fault wiring");
            faults.window = faults.stream.next_window();
        }
    }

    /// Crash: every incomplete request — queued for admission, awaiting
    /// prefill, or mid-decode — is pulled back for the router to requeue
    /// with its original arrival time intact; partial decode progress is
    /// discarded. Completed history and cumulative counters survive; only
    /// in-flight state resets.
    fn drain_for_requeue(&mut self) {
        let mut lost: Vec<Request> = Vec::new();
        for &idx in &self.awaiting_prefill {
            lost.push(self.slots[idx as usize].request);
        }
        for due in &mut self.calendar {
            for idx in due.drain(..) {
                lost.push(self.slots[idx as usize].request);
            }
        }
        // Generalized-path backlog: staged/parked preemption victims and
        // the scheduler queue go back to the router too (all empty on the
        // legacy path).
        for &idx in self
            .awaiting_swapin
            .iter()
            .chain(self.preempted.iter())
            .chain(self.swapped.iter())
        {
            lost.push(self.slots[idx as usize].request);
        }
        lost.extend(self.pending.iter().copied());
        lost.extend_from_slice(&self.trace[self.admit_cursor..]);
        self.awaiting_prefill.clear();
        self.awaiting_swapin.clear();
        self.preempted.clear();
        self.swapped.clear();
        self.pending.clear();
        self.active.clear();
        self.pending_first.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.decoding_count = 0;
        self.ctx_sum = 0;
        self.reserved = Bytes::ZERO;
        // A crash wipes the device: the block pool and every cached
        // prefix die with it.
        self.used_blocks = 0;
        for e in &mut self.prefix_cache {
            *e = PrefixEntry::default();
        }
        self.trace.truncate(self.admit_cursor);
        self.eff.truncate(self.admit_cursor);
        self.arrived = self.admit_cursor;
        if lost.is_empty() {
            return;
        }
        lost.sort_by_key(|r| r.id);
        let at = self.clock;
        self.requeued.extend(lost.into_iter().map(|r| (r, at)));
    }

    /// One prefill iteration of slot `idx`; returns its duration. Prices
    /// `prefill_tokens` — the full prompt, except on a prefix-cache hit,
    /// where the resident blocks' tokens are skipped.
    fn prefill(&mut self, idx: u32) -> Result<f64, ServeError> {
        let (tp, precision) = {
            let c = self.instance.config();
            (c.tp, c.precision)
        };
        let tokens = self.slots[idx as usize].prefill_tokens;
        let cached = self.prefill_cache[tokens];
        let base = if cached.is_nan() {
            let computed = self
                .instance
                .estimator()
                .prefill_iteration(1, tokens, tp, precision)
                .map_err(|e| ServeError::Estimator(e.to_string()))?
                .secs();
            self.prefill_cache[tokens] = computed;
            computed
        } else {
            cached
        };
        // `slow_mult` is 1.0 on the fault-free path (bitwise identity).
        let dur = base * self.slow_mult;
        self.slots[idx as usize].prefill_dur_s = dur;
        // Join the decode batch: first token next decode epoch, completion
        // `output` epochs out.
        self.rejoin_decode(idx);
        self.prefill_iterations += 1;
        if self.paged {
            self.donate_prefix(idx);
        }
        Ok(dur)
    }

    /// After a cache-miss prefill of a prefix-carrying request, donates
    /// the prefix's full blocks to the cache — an ownership transfer, so
    /// pool occupancy does not change. If a sibling miss donated first
    /// while this request queued for its prefill, dedupe: free the
    /// duplicate blocks and borrow the resident entry instead.
    fn donate_prefix(&mut self, idx: u32) {
        let (prefix, had_shared, private) = {
            let s = &self.slots[idx as usize];
            (s.request.prefix, s.shared_blocks > 0, s.blocks)
        };
        let Some(p) = prefix else { return };
        if had_shared {
            return; // admitted through the resident entry: nothing to donate
        }
        let full = p.tokens / self.block_tokens;
        if full == 0 {
            return; // the prefix does not fill a single block
        }
        debug_assert!(private > full, "a prompt strictly outgrows its prefix");
        let iter = self.iteration;
        let e = &mut self.prefix_cache[p.id];
        if e.resident {
            // Double miss: keep the sibling's resident copy, free ours.
            e.refs += 1;
            e.last_use = iter;
            let shared = e.blocks;
            let s = &mut self.slots[idx as usize];
            s.shared_blocks = shared;
            s.blocks -= shared;
            self.used_blocks -= shared;
        } else {
            e.resident = true;
            e.blocks = full;
            e.refs = 1;
            e.last_use = iter;
            let s = &mut self.slots[idx as usize];
            s.shared_blocks = full;
            s.blocks -= full;
        }
    }

    /// One decode iteration of the whole running batch; returns its
    /// duration (which paged swap-out preemptions lengthen by their
    /// transfer time).
    fn decode(&mut self) -> Result<f64, ServeError> {
        let swap_out_s = if self.paged { self.grow_batch() } else { 0.0 };
        let batch = self.decoding_count;
        // A mixed batch is priced at its aggregate context: attention cost
        // is linear in total KV entries read, so batch × ⌈mean⌉ preserves
        // it while the GEMM terms see the true batch width.
        let kv_len = self.ctx_sum.div_ceil(batch);
        let base = match self.table {
            Some(t) => t.decode_iteration(batch, kv_len).secs(),
            None => {
                let c = self.instance.config();
                self.instance
                    .estimator()
                    .decode_iteration(batch, kv_len, c.tp, c.precision)
                    .map_err(|e| ServeError::Estimator(e.to_string()))?
                    .secs()
            }
        };
        let dur = base * self.slow_mult + swap_out_s;
        self.decode_iterations += 1;
        self.decode_batch_sum += batch;
        let end = self.clock + dur;
        self.decode_epoch += 1;
        // Every member generates one token.
        self.ctx_sum += batch;
        for idx in self.pending_first.drain(..) {
            self.slots[idx as usize].first_token_s = end;
        }
        // Requests whose token quota fills this epoch complete, in join
        // order.
        let due_slot = self.decode_epoch % self.calendar.len();
        let done = core::mem::take(&mut self.calendar[due_slot]);
        if self.paged && !done.is_empty() {
            self.active.retain(|x| !done.contains(x));
        }
        for idx in done {
            let slot = &self.slots[idx as usize];
            self.sink.complete(slot, end);
            self.reserved = self.reserved - slot.reserved;
            self.ctx_sum -= slot.request.prompt + slot.request.output;
            self.decoding_count -= 1;
            self.free_slots.push(idx);
            if self.paged {
                self.release_completed(idx);
            }
        }
        Ok(dur)
    }

    /// The paged decode's growth pass: every member whose next token
    /// crosses a block boundary gets one more block, preempting victims
    /// when the pool (after evicting idle prefixes) runs dry; survivors
    /// then advance one generated token. Returns the summed swap-out
    /// transfer seconds charged to this iteration (zero under
    /// recompute).
    fn grow_batch(&mut self) -> f64 {
        let mut swap_s = 0.0;
        let mut i = 0;
        while i < self.active.len() {
            let idx = self.active[i];
            let (held, ctx_next) = {
                let s = &self.slots[idx as usize];
                (
                    s.blocks + s.shared_blocks,
                    s.request.prompt + s.generated + 1,
                )
            };
            if self.instance.blocks_for(ctx_next) <= held {
                i += 1;
                continue;
            }
            if self.ensure_free(1) {
                self.alloc_blocks(1);
                self.slots[idx as usize].blocks += 1;
                i += 1;
                continue;
            }
            // Pool exhausted: preempt. Under priority-preempt the least
            // urgent member goes (highest priority value, latest-joined
            // among ties); otherwise the latest-joined outright — the
            // vLLM recompute order. The grower itself can be the pick;
            // a batch of one always gets its block (its own private and
            // shared blocks are the only pinned ones left), so the pass
            // terminates with at least one survivor.
            let victim = if self.scheduler == Scheduler::PriorityPreempt {
                (0..self.active.len())
                    .max_by_key(|&j| (self.slots[self.active[j] as usize].request.priority, j))
                    .expect("the growing member is active")
            } else {
                self.active.len() - 1
            };
            swap_s += self.preempt(victim);
            if victim < i {
                i -= 1; // the list shifted under the cursor
            }
            // Re-examine position i: either the same still-blocked grower
            // or, when the grower itself was evicted, its successor.
        }
        for &idx in &self.active {
            self.slots[idx as usize].generated += 1;
        }
        swap_s
    }

    /// Preempts the active member at position `pos`: its private blocks
    /// leave the device (freed under recompute, streamed to host under
    /// swap), its prefix reference drops, and it moves to the matching
    /// re-admission queue. Returns the swap-out seconds charged.
    fn preempt(&mut self, pos: usize) -> f64 {
        let idx = self.active.remove(pos);
        let (blocks, shared, ctx, due, prefix) = {
            let s = &mut self.slots[idx as usize];
            let out = (
                s.blocks,
                s.shared_blocks,
                s.request.prompt + s.generated,
                s.due_ring,
                s.request.prefix,
            );
            s.blocks = 0;
            s.shared_blocks = 0;
            out
        };
        self.used_blocks -= blocks;
        if shared > 0 {
            let p = prefix.expect("shared blocks imply a prefix");
            let e = &mut self.prefix_cache[p.id];
            debug_assert!(e.refs > 0, "prefix refs free exactly once");
            e.refs -= 1;
            e.last_use = self.iteration;
        }
        self.calendar[due].retain(|&x| x != idx);
        self.pending_first.retain(|&x| x != idx);
        self.decoding_count -= 1;
        self.ctx_sum -= ctx;
        self.preemptions += 1;
        match self.policy {
            PreemptPolicy::Recompute => {
                // Progress is discarded; the whole prompt re-prefills.
                self.slots[idx as usize].generated = 0;
                self.preempted.push_back(idx);
                0.0
            }
            PreemptPolicy::Swap => {
                self.swap_outs += 1;
                self.swap_bytes += self.instance.block_bytes() * blocks as f64;
                self.swapped.push_back(idx);
                self.instance.swap_seconds(blocks)
            }
        }
    }

    /// Returns a completed slot's blocks to the pool and drops its
    /// prefix reference. The prefix entry stays resident — that is the
    /// cache; it leaves only by eviction or a crash.
    fn release_completed(&mut self, idx: u32) {
        let (blocks, shared, prefix) = {
            let s = &mut self.slots[idx as usize];
            let out = (s.blocks, s.shared_blocks, s.request.prefix);
            s.blocks = 0;
            s.shared_blocks = 0;
            out
        };
        self.used_blocks -= blocks;
        if shared > 0 {
            let p = prefix.expect("shared blocks imply a prefix");
            let e = &mut self.prefix_cache[p.id];
            debug_assert!(e.refs > 0, "prefix refs free exactly once");
            e.refs -= 1;
            e.last_use = self.iteration;
        }
    }

    /// Drains every pushed request to completion and closes the
    /// queue-depth series at the engine's final clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when iteration pricing fails.
    pub(crate) fn finish(&mut self) -> Result<(), ServeError> {
        self.advance_to(f64::INFINITY)?;
        // The series must end at trace end: if the stride skipped the
        // final iteration, append the terminal (idle) observation.
        if self
            .raw_samples
            .last()
            .is_some_and(|s| s.at.secs() < self.clock)
        {
            self.raw_samples.push(QueueSample {
                at: Time::from_secs(self.clock),
                waiting: 0,
                decoding: 0,
            });
        }
        Ok(())
    }

    /// Consumes the engine into (requests ever assigned — requeues count
    /// each assignment, report inputs). Call after
    /// [`ReplicaEngine::finish`].
    pub(crate) fn into_parts(self) -> (usize, ReportInputs) {
        let paging = self.paged.then(|| PagingReport {
            block_tokens: self.block_tokens,
            total_blocks: self.total_blocks,
            peak_blocks: self.peak_blocks,
            peak_block_utilization: if self.total_blocks > 0 {
                self.peak_blocks as f64 / self.total_blocks as f64
            } else {
                0.0
            },
            preemptions: self.preemptions,
            swap_outs: self.swap_outs,
            swap_ins: self.swap_ins,
            swap_bytes: self.swap_bytes,
            prefix_hits: self.prefix_hits,
            prefix_misses: self.prefix_misses,
            prefix_evictions: self.prefix_evictions,
            cached_tokens_saved: self.cached_tokens_saved,
        });
        // Paged peak occupancy in bytes, so `KvUsage` stays comparable
        // across regimes.
        let kv_peak = if self.paged {
            self.instance.block_bytes() * self.peak_blocks as f64
        } else {
            self.kv_peak
        };
        (
            self.assigned,
            ReportInputs {
                sink: self.sink,
                rejected_ids: self.rejected_ids,
                makespan_s: self.clock,
                kv_peak,
                prefill_iterations: self.prefill_iterations,
                decode_iterations: self.decode_iterations,
                decode_batch_sum: self.decode_batch_sum,
                queue_area: self.queue_area,
                peak_waiting: self.peak_waiting,
                peak_decoding: self.peak_decoding,
                raw_samples: self.raw_samples,
                paging,
            },
        )
    }
}
