//! The resumable per-replica event loop.
//!
//! [`ReplicaEngine`] is the continuous-batching scheduler of **one**
//! serving replica, factored out of the monolithic `ServeInstance::run`
//! so it can be driven two ways:
//!
//! * **batch** — push an entire trace, [`ReplicaEngine::finish`], read
//!   the report (the single-replica [`crate::ServeInstance::simulate`]
//!   path);
//! * **stepped** — interleave [`ReplicaEngine::push`] with
//!   [`ReplicaEngine::advance_to`] so an online router can observe live
//!   queue depth and outstanding work *at each arrival instant* before
//!   deciding which replica receives the request (the
//!   [`crate::FleetInstance`] path). State-aware routing policies are
//!   exactly why the engine is steppable rather than trace-split: the
//!   decision for request *n* depends on simulated state that requests
//!   `0..n` produced.
//!
//! Stepping semantics: an iteration is indivisible and starts whenever
//! the previous one ends — a real server cannot consult future arrivals —
//! so `advance_to(t)` runs every iteration that *starts* before `t` and
//! may leave the clock past `t` (mid-iteration overshoot). An idle engine
//! never invents work: it jumps its clock forward only to the next queued
//! arrival within the target.

use crate::faults::EngineFaults;
use crate::sim::{ServeError, ServeInstance, TraceBounds};
use crate::stats::LatencyAccumulator;
use crate::{QueueSample, Request, RequestMetrics, SloSpec, MAX_QUEUE_SAMPLES};
use optimus_infer::DecodeCostTable;
use optimus_units::{Bytes, Time};
use std::collections::VecDeque;

/// An admitted request's in-flight state (slot-arena entry, recycled at
/// completion).
struct Slot {
    request: Request,
    admitted_s: f64,
    prefill_dur_s: f64,
    first_token_s: f64,
    reserved: Bytes,
}

/// Streaming aggregation of completion events: latency accumulators plus
/// the scalar counters, and (when enabled) the per-request records.
pub(crate) struct CompletionSink {
    slo: SloSpec,
    records_on: bool,
    pub(crate) records: Vec<RequestMetrics>,
    pub(crate) ttft: LatencyAccumulator,
    pub(crate) tpot: LatencyAccumulator,
    pub(crate) e2e: LatencyAccumulator,
    pub(crate) completed: usize,
    pub(crate) generated_tokens: usize,
    pub(crate) met: usize,
    pub(crate) met_tokens: usize,
}

impl CompletionSink {
    fn new(slo: SloSpec, expected: usize, records_on: bool) -> Self {
        Self {
            slo,
            records_on,
            records: Vec::new(),
            ttft: LatencyAccumulator::for_population(expected),
            tpot: LatencyAccumulator::for_population(expected),
            e2e: LatencyAccumulator::for_population(expected),
            completed: 0,
            generated_tokens: 0,
            met: 0,
            met_tokens: 0,
        }
    }

    /// Folds one completed request into the aggregates.
    fn complete(&mut self, slot: &Slot, completed_s: f64) {
        let r = &slot.request;
        let first = slot.first_token_s;
        let ttft = first - r.arrival_s;
        let e2e = completed_s - r.arrival_s;
        let tpot =
            (r.output > 1).then(|| Time::from_secs((completed_s - first) / (r.output - 1) as f64));
        let met_slo =
            Time::from_secs(ttft) <= self.slo.ttft && tpot.is_none_or(|t| t <= self.slo.tpot);
        self.ttft.record(Time::from_secs(ttft));
        self.e2e.record(Time::from_secs(e2e));
        if let Some(t) = tpot {
            self.tpot.record(t);
        }
        self.completed += 1;
        self.generated_tokens += r.output;
        if met_slo {
            self.met += 1;
            self.met_tokens += r.output;
        }
        if self.records_on {
            self.records.push(RequestMetrics {
                id: r.id,
                prompt: r.prompt,
                generated: r.output,
                arrival: Time::from_secs(r.arrival_s),
                queue_wait: Time::from_secs(slot.admitted_s - r.arrival_s),
                prefill: Time::from_secs(slot.prefill_dur_s),
                ttft: Time::from_secs(ttft),
                e2e: Time::from_secs(e2e),
                tpot,
                met_slo,
            });
        }
    }
}

/// Everything one engine hands to report assembly.
pub(crate) struct ReportInputs {
    pub(crate) sink: CompletionSink,
    pub(crate) rejected_ids: Vec<usize>,
    pub(crate) makespan_s: f64,
    pub(crate) kv_peak: Bytes,
    pub(crate) prefill_iterations: usize,
    pub(crate) decode_iterations: usize,
    pub(crate) decode_batch_sum: usize,
    pub(crate) queue_area: f64,
    pub(crate) peak_waiting: usize,
    pub(crate) peak_decoding: usize,
    pub(crate) raw_samples: Vec<QueueSample>,
}

/// One replica's resumable scheduler state. See the module docs for the
/// batch/stepped driving modes.
pub(crate) struct ReplicaEngine<'i, 'a> {
    instance: &'i ServeInstance<'a>,
    table: Option<&'i DecodeCostTable>,
    budget: Bytes,

    // Dense prefill-duration cache by prompt length: each distinct
    // admittable prompt is priced once per engine, lock-free after.
    prefill_cache: Vec<f64>,

    // Completion ring: requests joining the decode batch with `n` output
    // tokens complete exactly `n` decode epochs later.
    calendar: Vec<Vec<u32>>,
    decode_epoch: usize,

    // The engine's trace: in batch mode the whole input, in stepped mode
    // whatever the router has assigned so far. `eff` runs parallel to it
    // with the *effective* (engine-observed, nondecreasing) arrival time:
    // the original arrival for first-routed requests, the requeue instant
    // for requests re-assigned after a crash. Metrics always use the
    // request's own `arrival_s`.
    trace: Vec<Request>,
    eff: Vec<f64>,
    arrived: usize,      // trace[..arrived] have arrived (eff ≤ clock)
    admit_cursor: usize, // trace[admit_cursor..arrived] queue for admission
    assigned: usize,     // total assignments ever (requeues drop `trace`)

    clock: f64,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    awaiting_prefill: VecDeque<u32>,
    pending_first: Vec<u32>,
    decoding_count: usize,
    ctx_sum: usize, // Σ (prompt + generated) over decoding
    rejected_ids: Vec<usize>,
    sink: CompletionSink,

    reserved: Bytes,
    kv_peak: Bytes,
    prefill_iterations: usize,
    decode_iterations: usize,
    decode_batch_sum: usize,
    queue_area: f64, // ∫ waiting dt
    peak_waiting: usize,
    peak_decoding: usize,
    // Queue-depth samples are thinned online (keep-every-other + stride
    // doubling once 2×MAX_QUEUE_SAMPLES accumulate), so memory stays
    // O(MAX_QUEUE_SAMPLES) however long the trace runs.
    raw_samples: Vec<QueueSample>,
    sample_stride: usize,
    iteration: usize,

    // Fault wiring (`None` on the fault-free path): the outage windows
    // the clock drains through, the router's availability cursor, and the
    // requests lost to crashes since the driver last collected them.
    faults: Option<EngineFaults>,
    slow_mult: f64,
    requeued: Vec<(Request, f64)>,
}

impl<'i, 'a> ReplicaEngine<'i, 'a> {
    /// A fresh engine over `instance`, sized by `bounds` (which must cover
    /// every request this engine will ever be pushed). `expected` sizes
    /// the latency accumulators' exact/streaming regime choice — fleet
    /// drivers pass the *whole* trace length so every replica picks the
    /// same regime and their populations merge loss-free.
    pub(crate) fn new(
        instance: &'i ServeInstance<'a>,
        table: Option<&'i DecodeCostTable>,
        bounds: &TraceBounds,
        expected: usize,
        records_on: bool,
        faults: Option<EngineFaults>,
    ) -> Self {
        let ring_len = bounds.max_kv.max(1) + 1; // ≥ max_output + 1
        let slow_mult = faults.as_ref().map_or(1.0, |f| f.slow_mult);
        Self {
            instance,
            table,
            budget: instance.kv_budget(),
            prefill_cache: vec![f64::NAN; bounds.max_prompt + 1],
            calendar: vec![Vec::new(); ring_len],
            decode_epoch: 0,
            trace: Vec::new(),
            eff: Vec::new(),
            arrived: 0,
            admit_cursor: 0,
            assigned: 0,
            clock: 0.0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            awaiting_prefill: VecDeque::new(),
            pending_first: Vec::new(),
            decoding_count: 0,
            ctx_sum: 0,
            rejected_ids: Vec::new(),
            sink: CompletionSink::new(instance.config().slo, expected, records_on),
            reserved: Bytes::ZERO,
            kv_peak: Bytes::ZERO,
            prefill_iterations: 0,
            decode_iterations: 0,
            decode_batch_sum: 0,
            queue_area: 0.0,
            peak_waiting: 0,
            peak_decoding: 0,
            raw_samples: Vec::new(),
            sample_stride: 1,
            iteration: 0,
            faults,
            slow_mult,
            requeued: Vec::new(),
        }
    }

    /// Assigns one request to this replica. Requests must be pushed in
    /// arrival order.
    pub(crate) fn push(&mut self, request: Request) {
        debug_assert!(
            self.trace
                .last()
                .is_none_or(|prev| prev.arrival_s <= request.arrival_s),
            "requests must be pushed in arrival order"
        );
        self.eff.push(request.arrival_s);
        self.trace.push(request);
        self.assigned += 1;
    }

    /// Assigns one request at router-observed time `at_s` — the churn
    /// path. The request keeps its own `arrival_s` for every metric; the
    /// engine first sees it at `at_s` (clamped so effective arrivals stay
    /// nondecreasing), which is how a requeued request re-enters a queue
    /// later than it originally arrived.
    pub(crate) fn push_at(&mut self, request: Request, at_s: f64) {
        let eff = self.eff.last().map_or(at_s, |&prev| prev.max(at_s));
        self.eff.push(eff);
        self.trace.push(request);
        self.assigned += 1;
    }

    /// Whether the replica's outage schedule has it up at `t` — the
    /// router's skip-down-replicas query. `t` must be nondecreasing
    /// across calls (the router's clock is monotone).
    pub(crate) fn available(&mut self, t: f64) -> bool {
        self.faults.as_mut().is_none_or(|f| !f.query.down_at(t))
    }

    /// The earliest instant ≥ `t` at which the replica's schedule has it
    /// up again.
    pub(crate) fn next_up(&mut self, t: f64) -> f64 {
        self.faults.as_mut().map_or(t, |f| f.query.next_up(t))
    }

    /// Takes the requests crashes have drained since the last call, each
    /// paired with the instant its replica dropped it.
    pub(crate) fn take_requeued(&mut self) -> Vec<(Request, f64)> {
        core::mem::take(&mut self.requeued)
    }

    /// Requests with **no compute yet**: routed but unadmitted (queued for
    /// KV space) plus admitted but still awaiting their prefill iteration.
    /// After `advance_to(t)`, this is exactly the waiting population a
    /// join-shortest-queue router should see at time `t`.
    pub(crate) fn waiting(&self) -> usize {
        (self.trace.len() - self.admit_cursor) + self.awaiting_prefill.len()
    }

    /// Requests routed to this replica and not yet completed — waiting or
    /// decoding. The least-outstanding router's load signal.
    pub(crate) fn outstanding(&self) -> usize {
        self.waiting() + self.decoding_count
    }

    /// Runs every iteration that starts before `target`. On return either
    /// the clock has reached (or overshot) `target`, or the engine is idle
    /// with no queued arrival before `target`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when iteration pricing fails
    /// (unsupported precision).
    pub(crate) fn advance_to(&mut self, target: f64) -> Result<(), ServeError> {
        loop {
            if self.faults.is_some() {
                self.process_outages();
            }
            while self.arrived < self.trace.len() && self.eff[self.arrived] <= self.clock {
                self.arrived += 1;
            }
            while self.admit_cursor < self.arrived {
                let front = &self.trace[self.admit_cursor];
                let need = self.instance.reservation(front);
                if need > self.budget {
                    // Could never be admitted, not even alone: drop it
                    // rather than block every request behind it forever.
                    self.rejected_ids.push(front.id);
                    self.admit_cursor += 1;
                    continue;
                }
                if self.reserved + need <= self.budget {
                    self.reserved += need;
                    self.kv_peak = self.kv_peak.max(self.reserved);
                    let slot = Slot {
                        request: *front,
                        admitted_s: self.clock,
                        prefill_dur_s: 0.0,
                        first_token_s: 0.0,
                        reserved: need,
                    };
                    let idx = if let Some(free) = self.free_slots.pop() {
                        self.slots[free as usize] = slot;
                        free
                    } else {
                        self.slots.push(slot);
                        u32::try_from(self.slots.len() - 1).expect("slot arena fits u32")
                    };
                    self.awaiting_prefill.push_back(idx);
                    self.admit_cursor += 1;
                } else {
                    break;
                }
            }
            let pending_len = self.arrived - self.admit_cursor;

            if self.awaiting_prefill.is_empty() && self.decoding_count == 0 {
                assert!(
                    pending_len == 0,
                    "an idle instance always admits the queue head"
                );
                if self.arrived >= self.trace.len() {
                    return Ok(()); // idle, nothing queued: wait for pushes
                }
                let next = self.eff[self.arrived];
                if next > target {
                    return Ok(()); // next arrival is beyond the target
                }
                self.clock = self.clock.max(next);
                continue;
            }
            if self.clock >= target {
                return Ok(());
            }

            // The waiting population over this iteration: arrived but no
            // compute yet — whether blocked on KV admission or on a
            // prefill slot. The request prefilled this very iteration
            // stops waiting now, so it is not counted; `peak_waiting`
            // observes the same population as the time-weighted mean.
            let waiting_before = pending_len + self.awaiting_prefill.len()
                - usize::from(!self.awaiting_prefill.is_empty());
            self.peak_waiting = self.peak_waiting.max(waiting_before);
            let dur = if let Some(idx) = self.awaiting_prefill.pop_front() {
                self.prefill(idx)?
            } else {
                self.decode()?
            };
            self.clock += dur;
            self.queue_area += waiting_before as f64 * dur;
            self.peak_decoding = self.peak_decoding.max(self.decoding_count);
            if self.iteration.is_multiple_of(self.sample_stride) {
                // The sample observes the *end* of the iteration, so it
                // must count every request that arrived while the
                // iteration ran — advance the arrival cursor to the new
                // clock before reading the waiting depth.
                while self.arrived < self.trace.len() && self.eff[self.arrived] <= self.clock {
                    self.arrived += 1;
                }
                self.raw_samples.push(QueueSample {
                    at: Time::from_secs(self.clock),
                    waiting: (self.arrived - self.admit_cursor) + self.awaiting_prefill.len(),
                    decoding: self.decoding_count,
                });
                if self.raw_samples.len() >= 2 * MAX_QUEUE_SAMPLES {
                    let mut keep = 0;
                    self.raw_samples.retain(|_| {
                        keep += 1;
                        keep % 2 == 1
                    });
                    self.sample_stride *= 2;
                }
            }
            self.iteration += 1;
        }
    }

    /// Applies every outage window the clock has reached. Crashes take
    /// effect at iteration boundaries: a window the clock lands *inside*
    /// drains the replica — all incomplete work goes back to the router —
    /// and jumps the clock to the recovery instant; a window the clock
    /// has already passed (the outage fit inside one indivisible
    /// iteration, or the engine was idle across it with nothing assigned)
    /// is ridden through without a drain.
    fn process_outages(&mut self) {
        loop {
            let Some((crash, recover)) = self.faults.as_ref().and_then(|f| f.window) else {
                return;
            };
            if self.clock < crash {
                return;
            }
            if self.clock < recover {
                self.drain_for_requeue();
                self.clock = recover;
            }
            let faults = self.faults.as_mut().expect("window implies fault wiring");
            faults.window = faults.stream.next_window();
        }
    }

    /// Crash: every incomplete request — queued for admission, awaiting
    /// prefill, or mid-decode — is pulled back for the router to requeue
    /// with its original arrival time intact; partial decode progress is
    /// discarded. Completed history and cumulative counters survive; only
    /// in-flight state resets.
    fn drain_for_requeue(&mut self) {
        let mut lost: Vec<Request> = Vec::new();
        for &idx in &self.awaiting_prefill {
            lost.push(self.slots[idx as usize].request);
        }
        for due in &mut self.calendar {
            for idx in due.drain(..) {
                lost.push(self.slots[idx as usize].request);
            }
        }
        lost.extend_from_slice(&self.trace[self.admit_cursor..]);
        self.awaiting_prefill.clear();
        self.pending_first.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.decoding_count = 0;
        self.ctx_sum = 0;
        self.reserved = Bytes::ZERO;
        self.trace.truncate(self.admit_cursor);
        self.eff.truncate(self.admit_cursor);
        self.arrived = self.admit_cursor;
        if lost.is_empty() {
            return;
        }
        lost.sort_by_key(|r| r.id);
        let at = self.clock;
        self.requeued.extend(lost.into_iter().map(|r| (r, at)));
    }

    /// One prefill iteration of slot `idx`; returns its duration.
    fn prefill(&mut self, idx: u32) -> Result<f64, ServeError> {
        let (tp, precision) = {
            let c = self.instance.config();
            (c.tp, c.precision)
        };
        let prompt = self.slots[idx as usize].request.prompt;
        let cached = self.prefill_cache[prompt];
        let base = if cached.is_nan() {
            let computed = self
                .instance
                .estimator()
                .prefill_iteration(1, prompt, tp, precision)
                .map_err(|e| ServeError::Estimator(e.to_string()))?
                .secs();
            self.prefill_cache[prompt] = computed;
            computed
        } else {
            cached
        };
        // `slow_mult` is 1.0 on the fault-free path (bitwise identity).
        let dur = base * self.slow_mult;
        self.slots[idx as usize].prefill_dur_s = dur;
        // Join the decode batch: first token next decode epoch, completion
        // `output` epochs out.
        self.decoding_count += 1;
        self.ctx_sum += prompt;
        self.pending_first.push(idx);
        let due =
            (self.decode_epoch + self.slots[idx as usize].request.output) % self.calendar.len();
        self.calendar[due].push(idx);
        self.prefill_iterations += 1;
        Ok(dur)
    }

    /// One decode iteration of the whole running batch; returns its
    /// duration.
    fn decode(&mut self) -> Result<f64, ServeError> {
        let batch = self.decoding_count;
        // A mixed batch is priced at its aggregate context: attention cost
        // is linear in total KV entries read, so batch × ⌈mean⌉ preserves
        // it while the GEMM terms see the true batch width.
        let kv_len = self.ctx_sum.div_ceil(batch);
        let base = match self.table {
            Some(t) => t.decode_iteration(batch, kv_len).secs(),
            None => {
                let c = self.instance.config();
                self.instance
                    .estimator()
                    .decode_iteration(batch, kv_len, c.tp, c.precision)
                    .map_err(|e| ServeError::Estimator(e.to_string()))?
                    .secs()
            }
        };
        let dur = base * self.slow_mult;
        self.decode_iterations += 1;
        self.decode_batch_sum += batch;
        let end = self.clock + dur;
        self.decode_epoch += 1;
        // Every member generates one token.
        self.ctx_sum += batch;
        for idx in self.pending_first.drain(..) {
            self.slots[idx as usize].first_token_s = end;
        }
        // Requests whose token quota fills this epoch complete, in join
        // order.
        let due_slot = self.decode_epoch % self.calendar.len();
        let done = core::mem::take(&mut self.calendar[due_slot]);
        for idx in done {
            let slot = &self.slots[idx as usize];
            self.sink.complete(slot, end);
            self.reserved = self.reserved - slot.reserved;
            self.ctx_sum -= slot.request.prompt + slot.request.output;
            self.decoding_count -= 1;
            self.free_slots.push(idx);
        }
        Ok(dur)
    }

    /// Drains every pushed request to completion and closes the
    /// queue-depth series at the engine's final clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when iteration pricing fails.
    pub(crate) fn finish(&mut self) -> Result<(), ServeError> {
        self.advance_to(f64::INFINITY)?;
        // The series must end at trace end: if the stride skipped the
        // final iteration, append the terminal (idle) observation.
        if self
            .raw_samples
            .last()
            .is_some_and(|s| s.at.secs() < self.clock)
        {
            self.raw_samples.push(QueueSample {
                at: Time::from_secs(self.clock),
                waiting: 0,
                decoding: 0,
            });
        }
        Ok(())
    }

    /// Consumes the engine into (requests ever assigned — requeues count
    /// each assignment, report inputs). Call after
    /// [`ReplicaEngine::finish`].
    pub(crate) fn into_parts(self) -> (usize, ReportInputs) {
        (
            self.assigned,
            ReportInputs {
                sink: self.sink,
                rejected_ids: self.rejected_ids,
                makespan_s: self.clock,
                kv_peak: self.kv_peak,
                prefill_iterations: self.prefill_iterations,
                decode_iterations: self.decode_iterations,
                decode_batch_sum: self.decode_batch_sum,
                queue_area: self.queue_area,
                peak_waiting: self.peak_waiting,
                peak_decoding: self.peak_decoding,
                raw_samples: self.raw_samples,
            },
        )
    }
}
