//! Deterministic discrete-event **continuous-batching serving simulator**.
//!
//! The paper's inference model (§IV) prices one static (batch, prompt,
//! decode) configuration; this crate models what a serving deployment
//! actually sees — a *request stream*. Requests arrive from a seeded
//! Poisson process (or evenly spaced, for closed-form validation), a
//! scheduler admits them FIFO under the device's KV-cache budget, and
//! prefill/decode iterations interleave exactly as an inference server's
//! execution loop would, each one priced through the memoized
//! [`optimus_infer::PreparedInferenceEstimator`]. The output is a
//! [`ServeReport`]: TTFT/TPOT/end-to-end percentiles, sustained
//! throughput, queue depth over time, KV occupancy, and goodput under a
//! configurable SLO.
//!
//! When requests never overlap, the simulator degenerates to the static
//! analytical model — the validation suite pins the two against each other
//! to within 2% — and under load it surfaces exactly the queueing and
//! batching effects the static model cannot express.
//!
//! Deployments are fleets, not single devices: [`FleetInstance`] runs
//! `replicas` identical instances behind an online router
//! ([`RouterPolicy`]: round-robin, seeded random, least-outstanding,
//! join-shortest-queue — the state-aware policies observe live
//! per-replica queue state at each arrival), merges the per-replica
//! latency populations exactly, and reports fleet-level throughput and
//! SLO goodput, so the load-sweep's frontier trades **TP-up against
//! replicate-out** at equal device counts (`gpus = tp × replicas`).
//! Fleets can additionally run under seeded fault injection
//! ([`FaultSpec`]: MTBF/MTTR crash/recover processes, shared failure
//! domains ([`FaultDomain`]) that take whole replica groups down
//! together — racks, power feeds, leaf switches — straggler slow nodes,
//! and fleet-wide degradation priced either flat or through the link
//! model ([`DegradeMode`])): crashed replicas drain their in-flight
//! work back to the router for deterministic requeueing, routers skip
//! down replicas, and reports gain availability metrics — which makes the
//! load-sweep frontier availability-aware.
//!
//! ```
//! use optimus_hw::presets;
//! use optimus_model::presets as models;
//! use optimus_serve::{simulate, ServeConfig, TraceSpec};
//! use std::sync::Arc;
//!
//! let cluster = presets::dgx_a100_hdr_cluster();
//! let trace = TraceSpec::poisson(42, 16, 2.0, 200, 16);
//! let report = simulate(
//!     &cluster,
//!     Arc::new(models::llama2_7b()),
//!     &ServeConfig::new(1),
//!     &trace,
//! )
//! .unwrap();
//! assert_eq!(report.completed, 16);
//! assert!(report.ttft.p50 <= report.e2e.p50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod faults;
mod fleet;
mod kv;
mod load;
mod report;
mod sim;
pub mod stats;
mod trace;

pub use faults::{DegradeMode, FaultDomain, FaultSpec, FleetAvailability};
pub use fleet::{
    simulate_fleet, simulate_fleet_trace, FleetConfig, FleetInstance, FleetReport, RouterPolicy,
};
pub use kv::{KvSpec, PagingReport, PreemptPolicy, Scheduler};
pub use load::{
    load_sweep, InfeasibleStrategy, LoadPoint, LoadStrategy, LoadSweepReport, LoadSweepSpec,
    SaturationCurve,
};
pub use report::{
    KvUsage, LatencyStats, QueueSample, QueueStats, RequestMetrics, ServeReport, SloReport, SloSpec,
};
pub use sim::{
    simulate, simulate_trace, PricingMode, RecordMode, ServeConfig, ServeError, ServeInstance,
    EXACT_MODE_LIMIT, MAX_QUEUE_SAMPLES,
};
pub use stats::{LatencyAccumulator, LogHistogram};
pub use trace::{ArrivalProcess, LengthDist, Prefix, PrefixSpec, Request, TraceSpec};
