//! Multi-replica fleet serving with online request routing.
//!
//! The paper's workload analysis treats inference deployments as
//! *fleets*: under a fixed GPU budget the operative capacity question is
//! **TP-up vs. replicate-out** — shard one replica wider, or run more
//! independent replicas of a narrower one. A [`FleetInstance`] simulates
//! `replicas` identical [`crate::ServeInstance`] replicas fed by one
//! front-door router that assigns each arriving request to exactly one
//! replica, online:
//!
//! * stateless policies ([`RouterPolicy::RoundRobin`],
//!   [`RouterPolicy::Random`]) decide from the arrival sequence alone;
//! * state-aware policies ([`RouterPolicy::LeastOutstanding`],
//!   [`RouterPolicy::JoinShortestQueue`]) observe **live** per-replica
//!   queue depth and outstanding work *at the arrival instant* — every
//!   replica engine is stepped to the arrival time before the decision,
//!   which is exactly why the event loop is a resumable
//!   `ReplicaEngine` rather than a trace splitter.
//!
//! The result is a [`FleetReport`]: per-replica [`ServeReport`]s plus
//! fleet-level latency (per-replica populations merged exactly in the
//! small-trace regime, histogram-merged in the streaming regime),
//! throughput, and SLO goodput. Everything is single-threaded and seeded,
//! so fleet reports are byte-identical across runs and thread counts.

use crate::engine::ReplicaEngine;
use crate::faults::{EngineFaults, FaultSpec, FleetAvailability};
use crate::sim::TraceBounds;
use crate::stats::LatencyAccumulator;
use crate::{
    LatencyStats, PagingReport, Request, ServeConfig, ServeError, ServeInstance, ServeReport,
    SloReport, TraceSpec,
};
use optimus_hw::{ClusterSpec, Precision};
use optimus_model::ModelConfig;
use optimus_units::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// How the fleet's front door assigns each arriving request to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Replica `i mod R` for the `i`-th routed request: perfectly
    /// balanced counts, blind to load.
    #[default]
    RoundRobin,
    /// Uniformly random replica from a seeded stream. Splitting a Poisson
    /// arrival process this way yields `R` independent Poisson processes
    /// at `rate / R` (thinning), so random routing is the stateless
    /// baseline fleet scaling is measured against.
    Random {
        /// Seed of the router's RNG (independent of the trace seed).
        seed: u64,
    },
    /// The replica with the fewest outstanding requests — waiting or
    /// decoding — at the arrival instant; ties break to the lowest
    /// replica index.
    LeastOutstanding,
    /// The replica with the shortest waiting queue (arrived but no
    /// compute yet) at the arrival instant; ties break to the lowest
    /// replica index. Ignores decode occupancy, so it reacts faster than
    /// [`RouterPolicy::LeastOutstanding`] but can pile onto a replica
    /// deep in decode work.
    JoinShortestQueue,
}

impl core::fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::RoundRobin => write!(f, "round-robin"),
            Self::Random { seed } => write!(f, "random(seed {seed})"),
            Self::LeastOutstanding => write!(f, "least-outstanding"),
            Self::JoinShortestQueue => write!(f, "shortest-queue"),
        }
    }
}

impl RouterPolicy {
    /// Whether the policy observes live replica state at each arrival
    /// (and therefore needs every engine stepped to the arrival time).
    #[must_use]
    pub fn is_state_aware(&self) -> bool {
        matches!(self, Self::LeastOutstanding | Self::JoinShortestQueue)
    }
}

/// Fleet configuration: how many replicas of which strategy, routed how.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of identical replicas (each `replica.tp` devices, so the
    /// fleet occupies `replicas × tp` GPUs).
    pub replicas: usize,
    /// The request-routing policy.
    pub router: RouterPolicy,
    /// The per-replica serving strategy.
    pub replica: ServeConfig,
    /// The injected fault environment. [`FaultSpec::none`] (the default)
    /// keeps the fleet path bit-identical to the fault-free simulation.
    pub faults: FaultSpec,
}

impl FleetConfig {
    /// A fleet of `replicas` TP-`tp` FP16 replicas behind a round-robin
    /// router, with the default interactive SLO.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `tp` is zero.
    #[must_use]
    pub fn new(replicas: usize, tp: usize) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        Self {
            replicas,
            router: RouterPolicy::default(),
            replica: ServeConfig::new(tp),
            faults: FaultSpec::none(),
        }
    }

    /// Sets the routing policy.
    #[must_use]
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Sets the per-replica serving strategy wholesale.
    #[must_use]
    pub fn with_replica(mut self, replica: ServeConfig) -> Self {
        self.replica = replica;
        self
    }

    /// Sets the fault environment.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

/// The complete outcome of one fleet simulation: fleet-level aggregates
/// plus the per-replica [`ServeReport`]s they were derived from.
///
/// `Serialize` is hand-written (not derived) so the trailing
/// paged-KV field is *omitted* — not `null` — in the legacy reserved
/// regime, keeping reserved-mode fleet JSON byte-identical to reports
/// emitted before paging existed.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct FleetReport {
    /// Model name.
    pub model: String,
    /// Cluster name.
    pub cluster: String,
    /// Tensor-parallel degree of each replica.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// Number of replicas.
    pub replicas: usize,
    /// Devices the fleet occupies: `tp × replicas`.
    pub gpus: usize,
    /// The routing policy used.
    pub router: RouterPolicy,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion (across all replicas).
    pub completed: usize,
    /// Requests rejected at the router (their lone KV reservation exceeds
    /// a replica's whole budget — no replica could ever admit them).
    pub rejected: usize,
    /// Trace ids of rejected requests.
    pub rejected_ids: Vec<usize>,
    /// Fleet makespan: the latest completion time across replicas.
    pub makespan: Time,
    /// Tokens generated across all completed requests.
    pub generated_tokens: usize,
    /// Sustained generation throughput: generated tokens / makespan.
    pub tokens_per_s: f64,
    /// Sustained request throughput: completed requests / makespan.
    pub requests_per_s: f64,
    /// Mean decode-batch size across all replicas' decode iterations.
    pub mean_decode_batch: f64,
    /// Time-to-first-token statistics over the merged fleet population.
    pub ttft: LatencyStats,
    /// Time-per-output-token statistics over the merged fleet population.
    pub tpot: LatencyStats,
    /// End-to-end latency statistics over the merged fleet population.
    pub e2e: LatencyStats,
    /// Worst per-replica peak KV utilization (`peak / budget`).
    pub kv_peak_utilization: f64,
    /// Goodput under the configured SLO, over the merged population.
    pub slo: SloReport,
    /// Requests assigned to each replica (`routed[i]` for replica `i`) —
    /// the router's balance at a glance. Requeues count every assignment,
    /// so under churn the sum is `requests − rejected + requeues`.
    pub routed: Vec<usize>,
    /// One full [`ServeReport`] per replica, in replica order.
    pub per_replica: Vec<ServeReport>,
    /// The injected fault environment, `None` for a fault-free run (a
    /// degenerate [`FaultSpec::none`] configuration also reports `None`).
    pub faults: Option<FaultSpec>,
    /// Availability and requeue metrics under churn — trivially perfect
    /// (`availability = 1`, nothing requeued) for a fault-free run.
    pub availability: FleetAvailability,
    /// Paged-KV accounting merged across replicas (peak occupancy is the
    /// worst replica's, counters are fleet sums). `None` in the legacy
    /// reserved regime.
    pub paging: Option<PagingReport>,
}

impl Serialize for FleetReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("model".to_owned(), self.model.to_value()),
            ("cluster".to_owned(), self.cluster.to_value()),
            ("tp".to_owned(), self.tp.to_value()),
            ("precision".to_owned(), self.precision.to_value()),
            ("replicas".to_owned(), self.replicas.to_value()),
            ("gpus".to_owned(), self.gpus.to_value()),
            ("router".to_owned(), self.router.to_value()),
            ("requests".to_owned(), self.requests.to_value()),
            ("completed".to_owned(), self.completed.to_value()),
            ("rejected".to_owned(), self.rejected.to_value()),
            ("rejected_ids".to_owned(), self.rejected_ids.to_value()),
            ("makespan".to_owned(), self.makespan.to_value()),
            (
                "generated_tokens".to_owned(),
                self.generated_tokens.to_value(),
            ),
            ("tokens_per_s".to_owned(), self.tokens_per_s.to_value()),
            ("requests_per_s".to_owned(), self.requests_per_s.to_value()),
            (
                "mean_decode_batch".to_owned(),
                self.mean_decode_batch.to_value(),
            ),
            ("ttft".to_owned(), self.ttft.to_value()),
            ("tpot".to_owned(), self.tpot.to_value()),
            ("e2e".to_owned(), self.e2e.to_value()),
            (
                "kv_peak_utilization".to_owned(),
                self.kv_peak_utilization.to_value(),
            ),
            ("slo".to_owned(), self.slo.to_value()),
            ("routed".to_owned(), self.routed.to_value()),
            ("per_replica".to_owned(), self.per_replica.to_value()),
            ("faults".to_owned(), self.faults.to_value()),
            ("availability".to_owned(), self.availability.to_value()),
        ];
        if let Some(paging) = &self.paging {
            fields.push(("paging".to_owned(), paging.to_value()));
        }
        Value::Object(fields)
    }
}

impl core::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "fleet of {} × TP{} ({} GPUs, {} router): served {}/{} requests ({} rejected) in {}",
            self.replicas,
            self.tp,
            self.gpus,
            self.router,
            self.completed,
            self.requests,
            self.rejected,
            self.makespan,
        )?;
        writeln!(
            f,
            "  {:.1} tok/s, {:.2} req/s fleet-wide  |  routed {:?}",
            self.tokens_per_s, self.requests_per_s, self.routed
        )?;
        let line = |name: &str, s: &LatencyStats| {
            format!(
                "  {name:<6} p50 {:>10}  p90 {:>10}  p99 {:>10}  mean {:>10}  max {:>10}",
                s.p50.to_string(),
                s.p90.to_string(),
                s.p99.to_string(),
                s.mean.to_string(),
                s.max.to_string()
            )
        };
        writeln!(f, "{}", line("ttft", &self.ttft))?;
        writeln!(f, "{}", line("tpot", &self.tpot))?;
        writeln!(f, "{}", line("e2e", &self.e2e))?;
        write!(
            f,
            "  slo    ttft ≤ {}, tpot ≤ {}: {}/{} met ({:.1}%), goodput {:.1} tok/s",
            self.slo.spec.ttft,
            self.slo.spec.tpot,
            self.slo.met,
            self.completed,
            self.slo.attainment * 100.0,
            self.slo.goodput_tokens_per_s
        )?;
        if self.faults.is_some() {
            let a = &self.availability;
            write!(
                f,
                "\n  churn  {} crashes, downtime {} (availability {:.2}%), {} requeues of {} requests",
                a.crashes,
                a.downtime,
                a.availability * 100.0,
                a.requeues,
                a.requeued_requests,
            )?;
        }
        if let Some(paging) = &self.paging {
            write!(f, "\n  paged  {paging}")?;
        }
        Ok(())
    }
}

/// A validated fleet: one shared [`ServeInstance`] (replicas are
/// identical, so they share the prepared estimator and sealed decode
/// table) plus the routing configuration. Build once, simulate many
/// traces.
#[derive(Debug)]
pub struct FleetInstance<'a> {
    instance: ServeInstance<'a>,
    config: FleetConfig,
}

impl<'a> FleetInstance<'a> {
    /// Validates the per-replica strategy and prepares the shared pricing
    /// estimator.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the replica strategy cannot serve at
    /// all (weights overflow the device, `tp` beyond a node), `replicas`
    /// is zero, or the fault spec requires link-mode degradation: this
    /// constructor prices over the caller's borrowed cluster as-is, so an
    /// active [`crate::DegradeMode::Link`] spec must instead enter
    /// through [`simulate_fleet_trace`] or [`crate::load_sweep`], which
    /// build the degraded cluster before preparing instances.
    pub fn new(
        cluster: &'a ClusterSpec,
        model: Arc<ModelConfig>,
        config: FleetConfig,
    ) -> Result<Self, ServeError> {
        if config.replicas == 0 {
            return Err(ServeError::InvalidConfig(
                "a fleet needs at least one replica".to_owned(),
            ));
        }
        if let Err(reason) = config.faults.validate() {
            return Err(ServeError::InvalidConfig(format!("fault spec: {reason}")));
        }
        if config.faults.link_degrade_active() {
            return Err(ServeError::InvalidConfig(
                "link-mode degradation re-prices the cluster's interconnect; \
                 run it through simulate_fleet/simulate_fleet_trace or load_sweep, \
                 which simulate over the degraded cluster"
                    .to_owned(),
            ));
        }
        let instance = ServeInstance::new(cluster, model, config.replica)?;
        Ok(Self { instance, config })
    }

    /// The shared per-replica instance.
    #[must_use]
    pub fn instance(&self) -> &ServeInstance<'a> {
        &self.instance
    }

    /// Simulates serving `trace` on this fleet.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when the device lacks the
    /// serving precision.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is not sorted by arrival time or contains a
    /// zero-length prompt or output.
    pub fn simulate(&self, trace: &[Request]) -> Result<FleetReport, ServeError> {
        run_fleet(
            &self.instance,
            self.config.replicas,
            self.config.router,
            &self.config.faults,
            trace,
        )
    }
}

/// The router's mutable decision state.
enum RouterState {
    RoundRobin { next: usize },
    Random { rng: StdRng },
    LeastOutstanding,
    JoinShortestQueue,
}

impl RouterState {
    fn new(policy: RouterPolicy) -> Self {
        match policy {
            RouterPolicy::RoundRobin => Self::RoundRobin { next: 0 },
            RouterPolicy::Random { seed } => Self::Random {
                rng: StdRng::seed_from_u64(seed),
            },
            RouterPolicy::LeastOutstanding => Self::LeastOutstanding,
            RouterPolicy::JoinShortestQueue => Self::JoinShortestQueue,
        }
    }

    /// Picks the replica for one arrival. `min_by_key` returns the first
    /// minimum, so state-aware ties break to the lowest replica index —
    /// deterministically.
    fn pick(&mut self, engines: &[ReplicaEngine<'_, '_>]) -> usize {
        match self {
            Self::RoundRobin { next } => {
                let choice = *next;
                *next = (*next + 1) % engines.len();
                choice
            }
            Self::Random { rng } => rng.gen_range(0..engines.len()),
            Self::LeastOutstanding => {
                engines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.outstanding())
                    .expect("a fleet has at least one replica")
                    .0
            }
            Self::JoinShortestQueue => {
                engines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.waiting())
                    .expect("a fleet has at least one replica")
                    .0
            }
        }
    }

    /// [`RouterState::pick`] restricted to the replicas `up` marks
    /// available — the churn path. The caller guarantees at least one up
    /// replica. Round-robin keeps its cursor discipline (first up replica
    /// at or after the cursor); random draws a uniform index among the up
    /// replicas (identical draws to [`RouterState::pick`] while all are
    /// up); state-aware ties still break to the lowest replica index.
    fn pick_up(&mut self, engines: &[ReplicaEngine<'_, '_>], up: &[bool]) -> usize {
        debug_assert!(up.iter().any(|&u| u), "route_at waits for a live replica");
        match self {
            Self::RoundRobin { next } => {
                let n = engines.len();
                let mut choice = *next % n;
                while !up[choice] {
                    choice = (choice + 1) % n;
                }
                *next = (choice + 1) % n;
                choice
            }
            Self::Random { rng } => {
                let alive = up.iter().filter(|&&u| u).count();
                let mut draw = rng.gen_range(0..alive);
                for (i, &u) in up.iter().enumerate() {
                    if u {
                        if draw == 0 {
                            return i;
                        }
                        draw -= 1;
                    }
                }
                unreachable!("draw < alive ⇒ an up replica matches")
            }
            Self::LeastOutstanding => {
                engines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| up[*i])
                    .min_by_key(|(_, e)| e.outstanding())
                    .expect("at least one up replica")
                    .0
            }
            Self::JoinShortestQueue => {
                engines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| up[*i])
                    .min_by_key(|(_, e)| e.waiting())
                    .expect("at least one up replica")
                    .0
            }
        }
    }
}

/// Routes one request at the router's monotone clock, skipping down
/// replicas. When the whole fleet is down the FIFO front door blocks —
/// `router_now` jumps to the earliest scheduled recovery — before the
/// request (and everything behind it) is assigned.
fn route_at(
    engines: &mut [ReplicaEngine<'_, '_>],
    state: &mut RouterState,
    router_now: &mut f64,
    up: &mut Vec<bool>,
    request: Request,
) {
    loop {
        up.clear();
        for engine in engines.iter_mut() {
            let live = engine.available(*router_now);
            up.push(live);
        }
        if up.iter().any(|&u| u) {
            break;
        }
        let wake = engines
            .iter_mut()
            .map(|e| e.next_up(*router_now))
            .fold(f64::INFINITY, f64::min);
        debug_assert!(wake > *router_now, "a down replica recovers strictly later");
        *router_now = wake;
    }
    let choice = state.pick_up(engines, up);
    engines[choice].push_at(request, *router_now);
}

/// Collects every request the replicas' crashes have drained and
/// re-routes each at the instant it was dropped — in deterministic
/// (drop time, then id) order — bumping the requeue counters.
fn reroute_drained(
    engines: &mut [ReplicaEngine<'_, '_>],
    state: &mut RouterState,
    router_now: &mut f64,
    up: &mut Vec<bool>,
    requeues: &mut usize,
    requeued_ids: &mut Vec<usize>,
) {
    let mut batch: Vec<(Request, f64)> = Vec::new();
    for engine in engines.iter_mut() {
        batch.extend(engine.take_requeued());
    }
    if batch.is_empty() {
        return;
    }
    batch.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)));
    for (request, dropped_at) in batch {
        *router_now = router_now.max(dropped_at);
        *requeues += 1;
        requeued_ids.push(request.id);
        route_at(engines, state, router_now, up, request);
    }
}

/// The fleet event loop: route every request online, drain the replicas,
/// merge their populations. Shared by [`FleetInstance::simulate`] and the
/// load-sweep engine (which routes over instances it already prepared and
/// sealed).
///
/// Online-knowledge caveat: a replica's queue-depth sample is taken at
/// the end of each iteration from the requests routed to it *by then*. A
/// request that arrives while an iteration is running is routed when the
/// stepped engines next yield, so it shows up from the replica's next
/// sample on — at most one iteration later than an omniscient observer
/// would report. All latency, throughput, and peak/mean queue accounting
/// is unaffected.
pub(crate) fn run_fleet(
    instance: &ServeInstance<'_>,
    replicas: usize,
    router: RouterPolicy,
    faults: &FaultSpec,
    trace: &[Request],
) -> Result<FleetReport, ServeError> {
    ServeInstance::validate_trace(trace);
    if let Err(reason) = faults.validate() {
        return Err(ServeError::InvalidConfig(format!("fault spec: {reason}")));
    }
    // A degenerate spec takes the exact fault-free code path below, so
    // `FaultSpec::none()` (whatever its seed) stays bit-identical to a
    // run without fault wiring at all.
    let faulty = !faults.is_none();
    // Global trace bounds dominate every replica's share, so one scan
    // sizes all engines and (in the streaming regime) one shared sealed
    // table prices all of them.
    let bounds = TraceBounds::scan(instance, trace);
    let table = instance.pricing_table(trace.len(), &bounds)?;
    // Regime and record decisions run on the *whole* trace length, never
    // a replica's share: every replica must pick the same accumulator
    // regime for the fleet merge to be loss-free, and `Auto` thresholds
    // would otherwise depend on the router's balance.
    let records_on = instance.records_on(trace.len());
    let mut engines: Vec<ReplicaEngine<'_, '_>> = (0..replicas)
        .map(|i| {
            let wiring = faulty.then(|| EngineFaults::for_replica(faults, i));
            ReplicaEngine::new(instance, table, &bounds, trace.len(), records_on, wiring)
        })
        .collect();

    let mut state = RouterState::new(router);
    let mut rejected_ids = Vec::new();
    let mut requeues = 0usize;
    let mut requeued_ids: Vec<usize> = Vec::new();
    // The router's own clock: monotone across requeues and all-down
    // stalls, so the availability cursors never run backwards.
    let mut router_now = 0.0_f64;
    let mut up: Vec<bool> = Vec::with_capacity(replicas);
    for r in trace {
        // No replica could ever admit this request (replicas are
        // identical), so the front door rejects it outright instead of
        // letting it occupy a queue. Admissibility is regime-aware: a
        // whole-lifetime reservation against the budget in reserved mode,
        // a worst-case block count against the pool in paged mode.
        if !instance.admissible(r) {
            rejected_ids.push(r.id);
            continue;
        }
        if faulty {
            // Step every replica to the arrival instant: crashes drain at
            // iteration boundaries, so work lost before this arrival is
            // requeued ahead of it, and state-aware policies observe live
            // queue state exactly as on the fault-free path.
            for engine in &mut engines {
                engine.advance_to(r.arrival_s)?;
            }
            router_now = router_now.max(r.arrival_s);
            reroute_drained(
                &mut engines,
                &mut state,
                &mut router_now,
                &mut up,
                &mut requeues,
                &mut requeued_ids,
            );
            route_at(&mut engines, &mut state, &mut router_now, &mut up, *r);
        } else {
            // A single replica needs no observation — every choice is 0 —
            // so skip the stepping and let the lone engine run in batch
            // mode (which also keeps a 1-replica fleet bit-identical to
            // the single-instance path for every policy).
            if replicas > 1 && router.is_state_aware() {
                // Step every replica to the arrival instant so the router
                // observes live queue depth / outstanding work, not stale
                // snapshots.
                for engine in &mut engines {
                    engine.advance_to(r.arrival_s)?;
                }
            }
            let choice = state.pick(&engines);
            engines[choice].push(*r);
        }
    }
    // Drain. Crashes during the tail can still requeue work after the
    // last arrival, so finishing and re-routing alternate until the fleet
    // runs dry (each round re-serves strictly the work the previous round
    // dropped, so this converges).
    let mut drain_rounds = 0usize;
    loop {
        for engine in &mut engines {
            engine.finish()?;
        }
        if !faulty {
            break;
        }
        let before = requeues;
        reroute_drained(
            &mut engines,
            &mut state,
            &mut router_now,
            &mut up,
            &mut requeues,
            &mut requeued_ids,
        );
        if requeues == before {
            break;
        }
        drain_rounds += 1;
        assert!(
            drain_rounds < 100_000,
            "requeue drain failed to converge after {drain_rounds} rounds"
        );
    }

    // --- aggregate -------------------------------------------------------
    let parts: Vec<(usize, crate::engine::ReportInputs)> =
        engines.into_iter().map(ReplicaEngine::into_parts).collect();
    let mut ttft = LatencyAccumulator::for_population(trace.len());
    let mut tpot = LatencyAccumulator::for_population(trace.len());
    let mut e2e = LatencyAccumulator::for_population(trace.len());
    let mut completed = 0;
    let mut generated_tokens = 0;
    let mut met = 0;
    let mut met_tokens = 0;
    let mut decode_iterations = 0;
    let mut decode_batch_sum = 0;
    let mut makespan_s = 0.0_f64;
    let mut paging: Option<PagingReport> = None;
    for (_, inputs) in &parts {
        if let Some(p) = &inputs.paging {
            paging = Some(match paging {
                Some(acc) => acc.merged(p),
                None => *p,
            });
        }
        ttft.merge(&inputs.sink.ttft);
        tpot.merge(&inputs.sink.tpot);
        e2e.merge(&inputs.sink.e2e);
        completed += inputs.sink.completed;
        generated_tokens += inputs.sink.generated_tokens;
        met += inputs.sink.met;
        met_tokens += inputs.sink.met_tokens;
        decode_iterations += inputs.decode_iterations;
        decode_batch_sum += inputs.decode_batch_sum;
        makespan_s = makespan_s.max(inputs.makespan_s);
        debug_assert!(
            inputs.rejected_ids.is_empty(),
            "the router pre-rejects unservable requests"
        );
    }
    let per_s = |count: f64| {
        if makespan_s > 0.0 {
            count / makespan_s
        } else {
            0.0
        }
    };
    let routed: Vec<usize> = parts.iter().map(|(routed, _)| *routed).collect();
    let per_replica: Vec<ServeReport> = parts
        .into_iter()
        .map(|(routed, inputs)| instance.assemble_report(routed, inputs))
        .collect();
    let config = instance.config();

    // Availability is schedule-based: outage windows are a pure function
    // of the spec, clipped to the fleet makespan, whether or not work was
    // lost in them.
    let mut crash_total = 0usize;
    let mut downtime_total = 0.0_f64;
    let mut per_replica_downtime = Vec::with_capacity(replicas);
    for i in 0..replicas {
        let (crashes, downtime) = if faulty {
            faults.outage_stats(i, makespan_s)
        } else {
            (0, 0.0)
        };
        crash_total += crashes;
        downtime_total += downtime;
        per_replica_downtime.push(Time::from_secs(downtime));
    }
    // Domain downtime is also reported un-fanned-out: the shared process
    // alone, clipped to the makespan. (Its fan-out to members is already
    // inside the per-replica merged downtime above.)
    let per_domain_downtime: Vec<Time> = if faulty {
        (0..faults.domains.len())
            .map(|d| Time::from_secs(faults.domain_outage_stats(d, makespan_s).1))
            .collect()
    } else {
        Vec::new()
    };
    let availability_frac = if makespan_s > 0.0 {
        1.0 - downtime_total / (replicas as f64 * makespan_s)
    } else {
        1.0
    };
    requeued_ids.sort_unstable();
    let mut distinct_requeued = requeued_ids;
    distinct_requeued.dedup();
    let goodput_tokens_per_s = per_s(met_tokens as f64);
    let up_replicas = replicas as f64 * availability_frac;
    let availability = FleetAvailability {
        crashes: crash_total,
        downtime: Time::from_secs(downtime_total),
        availability: availability_frac,
        requeues,
        requeued_requests: distinct_requeued.len(),
        requeued_ids: distinct_requeued,
        per_replica_downtime,
        per_domain_downtime,
        goodput_tokens_per_up_replica_s: if up_replicas > 0.0 {
            goodput_tokens_per_s / up_replicas
        } else {
            0.0
        },
    };
    Ok(FleetReport {
        model: per_replica[0].model.clone(),
        cluster: per_replica[0].cluster.clone(),
        tp: config.tp,
        precision: config.precision,
        replicas,
        gpus: config.tp * replicas,
        router,
        requests: trace.len(),
        completed,
        rejected: rejected_ids.len(),
        rejected_ids,
        makespan: Time::from_secs(makespan_s),
        generated_tokens,
        tokens_per_s: per_s(generated_tokens as f64),
        requests_per_s: per_s(completed as f64),
        mean_decode_batch: if decode_iterations > 0 {
            decode_batch_sum as f64 / decode_iterations as f64
        } else {
            0.0
        },
        ttft: ttft.finish(),
        tpot: tpot.finish(),
        e2e: e2e.finish(),
        kv_peak_utilization: per_replica
            .iter()
            .map(|r| r.kv.peak_utilization)
            .fold(0.0, f64::max),
        slo: SloReport {
            spec: config.slo,
            met,
            attainment: if completed > 0 {
                met as f64 / completed as f64
            } else {
                1.0
            },
            goodput_tokens_per_s,
            goodput_requests_per_s: per_s(met as f64),
        },
        routed,
        per_replica,
        faults: faulty.then(|| faults.clone().json_safe()),
        availability,
        paging,
    })
}

/// Generates the trace from `spec` and simulates serving it on a fleet of
/// `config.replicas` identical replicas of `model` over `cluster`.
///
/// # Errors
///
/// Returns [`ServeError`] when the replica strategy cannot serve at all
/// (see [`FleetInstance::new`]).
pub fn simulate_fleet(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &FleetConfig,
    spec: &TraceSpec,
) -> Result<FleetReport, ServeError> {
    simulate_fleet_trace(cluster, model, config, &spec.generate())
}

/// Like [`simulate_fleet`], over an explicit arrival-ordered request
/// list.
///
/// Unlike [`FleetInstance::new`], this entry point accepts an active
/// [`crate::DegradeMode::Link`] fault spec: it builds the
/// bandwidth-degraded copy of `cluster` (see
/// [`FaultSpec::degraded_cluster`]) and prices every iteration over it,
/// so the degradation flows through the collective cost model. The
/// report still carries the original spec in its `faults` field.
///
/// # Errors
///
/// Returns [`ServeError`] for configurations that cannot serve (weights
/// overflow the device, `tp` beyond a node, zero replicas, an invalid
/// fault spec).
///
/// # Panics
///
/// Panics if `trace` is not sorted by arrival time or contains a
/// zero-length prompt or output.
pub fn simulate_fleet_trace(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &FleetConfig,
    trace: &[Request],
) -> Result<FleetReport, ServeError> {
    if let Err(reason) = config.faults.validate() {
        return Err(ServeError::InvalidConfig(format!("fault spec: {reason}")));
    }
    let degraded = config.faults.degraded_cluster(cluster);
    let priced = degraded.as_ref().unwrap_or(cluster);
    if config.replicas == 0 {
        return Err(ServeError::InvalidConfig(
            "a fleet needs at least one replica".to_owned(),
        ));
    }
    let instance = ServeInstance::new(priced, model, config.replica)?;
    run_fleet(
        &instance,
        config.replicas,
        config.router,
        &config.faults,
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalProcess, LengthDist};
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn spec(seed: u64, requests: usize, rate: f64) -> TraceSpec {
        TraceSpec {
            seed,
            requests,
            arrival: ArrivalProcess::Poisson { rate_per_s: rate },
            prompt: LengthDist::Uniform { lo: 50, hi: 200 },
            output: LengthDist::Uniform { lo: 2, hi: 24 },
            prefixes: None,
            priority_classes: 1,
        }
    }

    fn policies() -> [RouterPolicy; 4] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::Random { seed: 99 },
            RouterPolicy::LeastOutstanding,
            RouterPolicy::JoinShortestQueue,
        ]
    }

    #[test]
    fn every_policy_conserves_requests_and_tokens() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let trace = spec(17, 96, 24.0);
        let requested: usize = trace.generate().iter().map(|r| r.output).sum();
        for policy in policies() {
            let config = FleetConfig::new(3, 1).with_router(policy);
            let report = simulate_fleet(&cluster, Arc::clone(&model), &config, &trace).unwrap();
            assert_eq!(
                report.completed + report.rejected,
                report.requests,
                "{policy}"
            );
            assert_eq!(report.rejected, 0, "{policy}");
            assert_eq!(report.generated_tokens, requested, "{policy}");
            assert_eq!(
                report.routed.iter().sum::<usize>(),
                report.requests,
                "{policy}"
            );
            assert_eq!(report.per_replica.len(), 3, "{policy}");
            let replica_completed: usize = report.per_replica.iter().map(|r| r.completed).sum();
            assert_eq!(replica_completed, report.completed, "{policy}");
            assert_eq!(report.gpus, 3, "{policy}");
        }
    }

    #[test]
    fn round_robin_balances_counts_exactly() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_fleet(
            &cluster,
            Arc::new(models::llama2_7b()),
            &FleetConfig::new(4, 1),
            &spec(5, 103, 16.0),
        )
        .unwrap();
        let (min, max) = (
            report.routed.iter().min().unwrap(),
            report.routed.iter().max().unwrap(),
        );
        assert!(max - min <= 1, "round-robin routed {:?}", report.routed);
    }

    /// A single-replica fleet is exactly the single-instance simulation
    /// for every policy: the per-replica report must equal
    /// `ServeInstance::simulate`'s output field for field — the
    /// refactor's ground truth, and what lets the load-sweep run all its
    /// cells through `run_fleet`.
    #[test]
    fn one_replica_fleet_equals_single_instance() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let trace = spec(11, 64, 8.0).generate();
        let single =
            crate::simulate_trace(&cluster, Arc::clone(&model), &ServeConfig::new(2), &trace)
                .unwrap();
        for policy in policies() {
            let fleet = simulate_fleet_trace(
                &cluster,
                Arc::clone(&model),
                &FleetConfig {
                    replicas: 1,
                    router: policy,
                    replica: ServeConfig::new(2),
                    faults: FaultSpec::none(),
                },
                &trace,
            )
            .unwrap();
            assert_eq!(fleet.per_replica[0], single, "{policy}");
            assert_eq!(fleet.ttft, single.ttft, "{policy}");
            assert_eq!(fleet.e2e, single.e2e, "{policy}");
            assert_eq!(fleet.makespan, single.makespan, "{policy}");
        }
    }

    /// State-aware routing must never leave one replica idle while
    /// another queues: under sustained load, least-outstanding spreads
    /// requests across all replicas.
    #[test]
    fn state_aware_routing_uses_every_replica() {
        let cluster = presets::dgx_a100_hdr_cluster();
        for policy in [
            RouterPolicy::LeastOutstanding,
            RouterPolicy::JoinShortestQueue,
        ] {
            let report = simulate_fleet(
                &cluster,
                Arc::new(models::llama2_7b()),
                &FleetConfig::new(4, 1).with_router(policy),
                &spec(23, 200, 200.0),
            )
            .unwrap();
            assert!(
                report.routed.iter().all(|&n| n > 0),
                "{policy} starved a replica: {:?}",
                report.routed
            );
        }
    }

    /// Unservable requests are rejected at the router, and every other
    /// request still completes.
    #[test]
    fn oversized_request_is_rejected_at_the_router() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let trace = [
            Request::new(0, 0.1, 500_000, 4),
            Request::new(1, 0.2, 100, 4),
            Request::new(2, 0.3, 120, 4),
        ];
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &FleetConfig::new(2, 1).with_router(RouterPolicy::LeastOutstanding),
            &trace,
        )
        .unwrap();
        assert_eq!(report.rejected_ids, vec![0]);
        assert_eq!(report.completed, 2);
        assert!(report.per_replica.iter().all(|r| r.rejected == 0));
    }

    #[test]
    fn zero_replicas_is_a_clean_error() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = FleetInstance::new(
            &cluster,
            Arc::new(models::llama2_7b()),
            FleetConfig {
                replicas: 0,
                router: RouterPolicy::RoundRobin,
                replica: ServeConfig::new(1),
                faults: FaultSpec::none(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn empty_trace_yields_an_empty_fleet_report() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &FleetConfig::new(2, 1),
            &[],
        )
        .unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, Time::ZERO);
        assert_eq!(report.slo.attainment, 1.0);
        assert_eq!(report.routed, vec![0, 0]);
    }

    /// More replicas at the same offered load strictly help the TTFT
    /// tail once a single replica saturates.
    #[test]
    fn replication_relieves_a_saturated_replica() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let trace = spec(7, 128, 50.0);
        let one = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(1, 1),
            &trace,
        )
        .unwrap();
        let four = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(4, 1).with_router(RouterPolicy::LeastOutstanding),
            &trace,
        )
        .unwrap();
        assert!(
            four.ttft.p99 < one.ttft.p99,
            "4 replicas p99 {} vs 1 replica p99 {}",
            four.ttft.p99,
            one.ttft.p99
        );
        assert!(four.slo.attainment >= one.slo.attainment);
    }

    /// Crash injection still conserves requests — everything completes
    /// after requeues — and the report carries the matching availability
    /// metrics.
    #[test]
    fn crashes_requeue_and_conserve() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let faults = FaultSpec::crashes(5, 8.0, 2.0);
        let config = FleetConfig::new(3, 1)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_faults(faults.clone());
        let report =
            simulate_fleet(&cluster, Arc::clone(&model), &config, &spec(29, 400, 40.0)).unwrap();
        assert_eq!(report.completed + report.rejected, report.requests);
        assert_eq!(report.faults, Some(faults));
        let a = &report.availability;
        assert!(a.crashes > 0, "8 s MTBF over a long trace must crash");
        assert!(a.downtime > Time::ZERO);
        assert!(a.availability < 1.0 && a.availability > 0.0);
        assert!(a.requeues >= a.requeued_requests);
        assert_eq!(a.requeued_ids.len(), a.requeued_requests);
        assert!(a.requeued_ids.windows(2).all(|w| w[0] < w[1]));
        // Every assignment is accounted: originals plus requeue events.
        assert_eq!(
            report.routed.iter().sum::<usize>(),
            report.requests - report.rejected + a.requeues
        );
        // Schedule-based downtime matches the per-replica decomposition.
        let sum: f64 = a.per_replica_downtime.iter().map(|t| t.secs()).sum();
        assert!((sum - a.downtime.secs()).abs() < 1e-9);
        assert!(report.to_string().contains("churn"));
    }

    /// A straggler-only spec slows the straggling replica without losing
    /// any request.
    #[test]
    fn stragglers_slow_but_conserve() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let trace = spec(31, 200, 30.0);
        let clean = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(2, 1),
            &trace,
        )
        .unwrap();
        let slowed = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(2, 1).with_faults(FaultSpec::none().with_degradation(3.0)),
            &trace,
        )
        .unwrap();
        assert_eq!(slowed.completed, clean.completed);
        assert_eq!(slowed.availability.requeues, 0);
        assert_eq!(slowed.availability.availability, 1.0);
        assert!(
            slowed.e2e.mean > clean.e2e.mean,
            "3× degradation must slow e2e: {} vs {}",
            slowed.e2e.mean,
            clean.e2e.mean
        );
    }

    #[test]
    fn invalid_fault_spec_is_a_clean_error() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = FleetInstance::new(
            &cluster,
            Arc::new(models::llama2_7b()),
            FleetConfig::new(2, 1).with_faults(FaultSpec::crashes(0, 10.0, -1.0)),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    /// Every availability and throughput figure must be finite and JSON
    /// must carry no `null`ed-out numbers (the vendored serializer writes
    /// non-finite floats as `null`), whatever degenerate shape the run
    /// takes: nothing served, everything rejected, or replicas down for
    /// essentially the whole run.
    fn assert_json_has_no_nulls(report: &FleetReport) {
        let a = &report.availability;
        assert!(a.availability.is_finite() && (0.0..=1.0).contains(&a.availability));
        assert!(a.goodput_tokens_per_up_replica_s.is_finite());
        assert!(report.tokens_per_s.is_finite());
        assert!(report.requests_per_s.is_finite());
        assert!(report.mean_decode_batch.is_finite());
        assert!(report.kv_peak_utilization.is_finite());
        assert!(report.slo.attainment.is_finite());
        assert!(report.slo.goodput_tokens_per_s.is_finite());
        let json = serde_json::to_string(report).unwrap();
        assert!(
            !json.contains("null"),
            "a non-finite number leaked into the fleet JSON: {json}"
        );
    }

    /// Regression (availability audit): an empty trace under an active
    /// fault spec has `makespan == 0`, which used to be the divide-by-zero
    /// hazard for the availability fraction and per-up-replica goodput.
    #[test]
    fn empty_trace_under_faults_keeps_availability_finite() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &FleetConfig::new(3, 1).with_faults(FaultSpec::crashes(5, 2.0, 1.0)),
            &[],
        )
        .unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, Time::ZERO);
        assert_eq!(report.availability.availability, 1.0);
        assert_eq!(report.availability.crashes, 0, "outages clip to makespan");
        assert_json_has_no_nulls(&report);
    }

    /// Regression (availability audit): a trace whose every request is
    /// rejected at the front door also never starts the clock — the
    /// availability math and throughput denominators must stay clean.
    #[test]
    fn all_rejected_trace_under_faults_keeps_availability_finite() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let trace = [
            Request::new(0, 0.1, 500_000, 4),
            Request::new(1, 0.2, 600_000, 4),
        ];
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &FleetConfig::new(2, 1).with_faults(FaultSpec::crashes(5, 2.0, 1.0)),
            &trace,
        )
        .unwrap();
        assert_eq!(report.rejected, 2);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, Time::ZERO);
        assert_eq!(report.availability.availability, 1.0);
        assert_eq!(report.slo.attainment, 1.0);
        assert_json_has_no_nulls(&report);
    }

    /// Replicas down for essentially the entire run: the fraction must
    /// stay inside [0, 1] (downtime is clipped per replica to the
    /// makespan), requests still complete once repairs land, and the JSON
    /// stays null-free.
    #[test]
    fn mostly_down_fleet_keeps_availability_in_unit_range() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_fleet(
            &cluster,
            Arc::new(models::llama2_7b()),
            &FleetConfig::new(2, 1).with_faults(FaultSpec::crashes(9, 0.5, 50.0)),
            &spec(41, 30, 10.0),
        )
        .unwrap();
        assert_eq!(report.completed + report.rejected, report.requests);
        assert!(report.availability.availability < 1.0);
        assert!(report.availability.downtime > Time::ZERO);
        assert_json_has_no_nulls(&report);
    }

    /// Pins the fleet half of the online-knowledge caveat documented on
    /// [`run_fleet`]: a request that arrives while a replica's iteration
    /// is running is (a) routed with *live* queue knowledge — the
    /// state-aware router sends it to the idle replica, not the busy one —
    /// and (b) visible in the busy replica's samples at most one
    /// iteration late: the sample closing the in-flight iteration was
    /// recorded before the router pushed the request (an omniscient
    /// observer would count it waiting there), and the very next sample
    /// shows it in compute.
    #[test]
    fn router_sees_mid_iteration_arrivals_and_samples_lag_one_iteration() {
        let cluster = presets::dgx_a100_hdr_cluster();
        // Request 0 opens a 4000-token prefill on replica 0 (≫ 2 ms);
        // requests 1 and 2 arrive 1–2 ms into it.
        let trace = [
            Request::new(0, 0.1, 4000, 4),
            Request::new(1, 0.101, 100, 4),
            Request::new(2, 0.102, 100, 4),
        ];
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &FleetConfig::new(2, 1).with_router(RouterPolicy::LeastOutstanding),
            &trace,
        )
        .unwrap();
        // Live knowledge: replica 0 is mid-prefill when request 1 lands,
        // so least-outstanding diverts it to replica 1; request 2 ties
        // 1–1 and breaks to replica 0. Stale (route-time-zero) knowledge
        // would have sent all three to replica 0.
        assert_eq!(report.routed, vec![2, 1]);
        assert_eq!(report.completed, 3);
        // Sample lag = exactly 1 iteration here: replica 0's opening
        // prefill outlasts request 2's arrival, but the engine ran (and
        // sampled) that iteration while advancing to request 1's arrival
        // — before the router pushed request 2 — so the closing sample
        // shows an empty queue where an omniscient observer would count
        // one waiter. The very next iteration is request 2's prefill, so
        // the next sample already shows it decoding: the lag never
        // exceeds one iteration.
        let samples = &report.per_replica[0].queue.samples;
        assert!(
            samples[0].at.secs() > 0.102,
            "the opening prefill must outlast the mid-iteration arrival ({})",
            samples[0].at
        );
        assert_eq!(
            (samples[0].waiting, samples[0].decoding),
            (0, 1),
            "the closing sample predates the mid-iteration push — the one-iteration lag"
        );
        assert_eq!(
            samples[1].decoding, 2,
            "the pushed request must be in compute by the next sample"
        );
    }

    /// A paged fleet with a shared-prefix trace merges per-replica paging
    /// into one fleet section: counters are sums, peak occupancy is the
    /// worst replica's, and conservation still holds under preemption.
    #[test]
    fn paged_fleet_merges_paging_and_conserves() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut trace_spec = spec(53, 120, 40.0);
        trace_spec.prefixes = Some(crate::PrefixSpec {
            pool: 3,
            tokens: 32,
            rate: 0.6,
        });
        let config = FleetConfig::new(3, 1)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_replica(ServeConfig::new(1).with_kv(crate::KvSpec::paged(16)));
        let report = simulate_fleet(&cluster, Arc::clone(&model), &config, &trace_spec).unwrap();
        assert_eq!(report.completed + report.rejected, report.requests);
        let fleet_paging = report.paging.expect("paged fleets report paging");
        let per: Vec<_> = report
            .per_replica
            .iter()
            .map(|r| r.paging.expect("paged replicas report paging"))
            .collect();
        assert_eq!(
            fleet_paging.prefix_hits + fleet_paging.prefix_misses,
            per.iter().map(|p| p.prefix_hits + p.prefix_misses).sum()
        );
        assert_eq!(
            fleet_paging.peak_blocks,
            per.iter().map(|p| p.peak_blocks).max().unwrap()
        );
        assert!(fleet_paging.prefix_hits > 0, "a 60% hit rate must hit");
        assert!(fleet_paging.peak_blocks <= fleet_paging.total_blocks);
        // The reserved fleet on the identical trace reports no paging.
        let reserved = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(3, 1).with_router(RouterPolicy::LeastOutstanding),
            &trace_spec,
        )
        .unwrap();
        assert!(reserved.paging.is_none());
        assert!(reserved.per_replica.iter().all(|r| r.paging.is_none()));
        assert!(!serde_json::to_string(&reserved).unwrap().contains("paging"));
    }
}
