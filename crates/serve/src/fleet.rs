//! Multi-replica fleet serving with online request routing.
//!
//! The paper's workload analysis treats inference deployments as
//! *fleets*: under a fixed GPU budget the operative capacity question is
//! **TP-up vs. replicate-out** — shard one replica wider, or run more
//! independent replicas of a narrower one. A [`FleetInstance`] simulates
//! `replicas` identical [`crate::ServeInstance`] replicas fed by one
//! front-door router that assigns each arriving request to exactly one
//! replica, online:
//!
//! * stateless policies ([`RouterPolicy::RoundRobin`],
//!   [`RouterPolicy::Random`]) decide from the arrival sequence alone;
//! * state-aware policies ([`RouterPolicy::LeastOutstanding`],
//!   [`RouterPolicy::JoinShortestQueue`]) observe **live** per-replica
//!   queue depth and outstanding work *at the arrival instant* — every
//!   replica engine is stepped to the arrival time before the decision,
//!   which is exactly why the event loop is a resumable
//!   `ReplicaEngine` rather than a trace splitter.
//!
//! The result is a [`FleetReport`]: per-replica [`ServeReport`]s plus
//! fleet-level latency (per-replica populations merged exactly in the
//! small-trace regime, histogram-merged in the streaming regime),
//! throughput, and SLO goodput. Everything is single-threaded and seeded,
//! so fleet reports are byte-identical across runs and thread counts.

use crate::engine::ReplicaEngine;
use crate::sim::TraceBounds;
use crate::stats::LatencyAccumulator;
use crate::{
    LatencyStats, Request, ServeConfig, ServeError, ServeInstance, ServeReport, SloReport,
    TraceSpec,
};
use optimus_hw::{ClusterSpec, Precision};
use optimus_model::ModelConfig;
use optimus_units::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the fleet's front door assigns each arriving request to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Replica `i mod R` for the `i`-th routed request: perfectly
    /// balanced counts, blind to load.
    #[default]
    RoundRobin,
    /// Uniformly random replica from a seeded stream. Splitting a Poisson
    /// arrival process this way yields `R` independent Poisson processes
    /// at `rate / R` (thinning), so random routing is the stateless
    /// baseline fleet scaling is measured against.
    Random {
        /// Seed of the router's RNG (independent of the trace seed).
        seed: u64,
    },
    /// The replica with the fewest outstanding requests — waiting or
    /// decoding — at the arrival instant; ties break to the lowest
    /// replica index.
    LeastOutstanding,
    /// The replica with the shortest waiting queue (arrived but no
    /// compute yet) at the arrival instant; ties break to the lowest
    /// replica index. Ignores decode occupancy, so it reacts faster than
    /// [`RouterPolicy::LeastOutstanding`] but can pile onto a replica
    /// deep in decode work.
    JoinShortestQueue,
}

impl core::fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::RoundRobin => write!(f, "round-robin"),
            Self::Random { seed } => write!(f, "random(seed {seed})"),
            Self::LeastOutstanding => write!(f, "least-outstanding"),
            Self::JoinShortestQueue => write!(f, "shortest-queue"),
        }
    }
}

impl RouterPolicy {
    /// Whether the policy observes live replica state at each arrival
    /// (and therefore needs every engine stepped to the arrival time).
    #[must_use]
    pub fn is_state_aware(&self) -> bool {
        matches!(self, Self::LeastOutstanding | Self::JoinShortestQueue)
    }
}

/// Fleet configuration: how many replicas of which strategy, routed how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of identical replicas (each `replica.tp` devices, so the
    /// fleet occupies `replicas × tp` GPUs).
    pub replicas: usize,
    /// The request-routing policy.
    pub router: RouterPolicy,
    /// The per-replica serving strategy.
    pub replica: ServeConfig,
}

impl FleetConfig {
    /// A fleet of `replicas` TP-`tp` FP16 replicas behind a round-robin
    /// router, with the default interactive SLO.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `tp` is zero.
    #[must_use]
    pub fn new(replicas: usize, tp: usize) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        Self {
            replicas,
            router: RouterPolicy::default(),
            replica: ServeConfig::new(tp),
        }
    }

    /// Sets the routing policy.
    #[must_use]
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Sets the per-replica serving strategy wholesale.
    #[must_use]
    pub fn with_replica(mut self, replica: ServeConfig) -> Self {
        self.replica = replica;
        self
    }
}

/// The complete outcome of one fleet simulation: fleet-level aggregates
/// plus the per-replica [`ServeReport`]s they were derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Model name.
    pub model: String,
    /// Cluster name.
    pub cluster: String,
    /// Tensor-parallel degree of each replica.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// Number of replicas.
    pub replicas: usize,
    /// Devices the fleet occupies: `tp × replicas`.
    pub gpus: usize,
    /// The routing policy used.
    pub router: RouterPolicy,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion (across all replicas).
    pub completed: usize,
    /// Requests rejected at the router (their lone KV reservation exceeds
    /// a replica's whole budget — no replica could ever admit them).
    pub rejected: usize,
    /// Trace ids of rejected requests.
    pub rejected_ids: Vec<usize>,
    /// Fleet makespan: the latest completion time across replicas.
    pub makespan: Time,
    /// Tokens generated across all completed requests.
    pub generated_tokens: usize,
    /// Sustained generation throughput: generated tokens / makespan.
    pub tokens_per_s: f64,
    /// Sustained request throughput: completed requests / makespan.
    pub requests_per_s: f64,
    /// Mean decode-batch size across all replicas' decode iterations.
    pub mean_decode_batch: f64,
    /// Time-to-first-token statistics over the merged fleet population.
    pub ttft: LatencyStats,
    /// Time-per-output-token statistics over the merged fleet population.
    pub tpot: LatencyStats,
    /// End-to-end latency statistics over the merged fleet population.
    pub e2e: LatencyStats,
    /// Worst per-replica peak KV utilization (`peak / budget`).
    pub kv_peak_utilization: f64,
    /// Goodput under the configured SLO, over the merged population.
    pub slo: SloReport,
    /// Requests routed to each replica (`routed[i]` for replica `i`) —
    /// the router's balance at a glance.
    pub routed: Vec<usize>,
    /// One full [`ServeReport`] per replica, in replica order.
    pub per_replica: Vec<ServeReport>,
}

impl core::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "fleet of {} × TP{} ({} GPUs, {} router): served {}/{} requests ({} rejected) in {}",
            self.replicas,
            self.tp,
            self.gpus,
            self.router,
            self.completed,
            self.requests,
            self.rejected,
            self.makespan,
        )?;
        writeln!(
            f,
            "  {:.1} tok/s, {:.2} req/s fleet-wide  |  routed {:?}",
            self.tokens_per_s, self.requests_per_s, self.routed
        )?;
        let line = |name: &str, s: &LatencyStats| {
            format!(
                "  {name:<6} p50 {:>10}  p90 {:>10}  p99 {:>10}  mean {:>10}  max {:>10}",
                s.p50.to_string(),
                s.p90.to_string(),
                s.p99.to_string(),
                s.mean.to_string(),
                s.max.to_string()
            )
        };
        writeln!(f, "{}", line("ttft", &self.ttft))?;
        writeln!(f, "{}", line("tpot", &self.tpot))?;
        writeln!(f, "{}", line("e2e", &self.e2e))?;
        write!(
            f,
            "  slo    ttft ≤ {}, tpot ≤ {}: {}/{} met ({:.1}%), goodput {:.1} tok/s",
            self.slo.spec.ttft,
            self.slo.spec.tpot,
            self.slo.met,
            self.completed,
            self.slo.attainment * 100.0,
            self.slo.goodput_tokens_per_s
        )
    }
}

/// A validated fleet: one shared [`ServeInstance`] (replicas are
/// identical, so they share the prepared estimator and sealed decode
/// table) plus the routing configuration. Build once, simulate many
/// traces.
#[derive(Debug)]
pub struct FleetInstance<'a> {
    instance: ServeInstance<'a>,
    config: FleetConfig,
}

impl<'a> FleetInstance<'a> {
    /// Validates the per-replica strategy and prepares the shared pricing
    /// estimator.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the replica strategy cannot serve at
    /// all (weights overflow the device, `tp` beyond a node) or
    /// `replicas` is zero.
    pub fn new(
        cluster: &'a ClusterSpec,
        model: Arc<ModelConfig>,
        config: FleetConfig,
    ) -> Result<Self, ServeError> {
        if config.replicas == 0 {
            return Err(ServeError::InvalidConfig(
                "a fleet needs at least one replica".to_owned(),
            ));
        }
        let instance = ServeInstance::new(cluster, model, config.replica)?;
        Ok(Self { instance, config })
    }

    /// The shared per-replica instance.
    #[must_use]
    pub fn instance(&self) -> &ServeInstance<'a> {
        &self.instance
    }

    /// Simulates serving `trace` on this fleet.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when the device lacks the
    /// serving precision.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is not sorted by arrival time or contains a
    /// zero-length prompt or output.
    pub fn simulate(&self, trace: &[Request]) -> Result<FleetReport, ServeError> {
        run_fleet(
            &self.instance,
            self.config.replicas,
            self.config.router,
            trace,
        )
    }
}

/// The router's mutable decision state.
enum RouterState {
    RoundRobin { next: usize },
    Random { rng: StdRng },
    LeastOutstanding,
    JoinShortestQueue,
}

impl RouterState {
    fn new(policy: RouterPolicy) -> Self {
        match policy {
            RouterPolicy::RoundRobin => Self::RoundRobin { next: 0 },
            RouterPolicy::Random { seed } => Self::Random {
                rng: StdRng::seed_from_u64(seed),
            },
            RouterPolicy::LeastOutstanding => Self::LeastOutstanding,
            RouterPolicy::JoinShortestQueue => Self::JoinShortestQueue,
        }
    }

    /// Picks the replica for one arrival. `min_by_key` returns the first
    /// minimum, so state-aware ties break to the lowest replica index —
    /// deterministically.
    fn pick(&mut self, engines: &[ReplicaEngine<'_, '_>]) -> usize {
        match self {
            Self::RoundRobin { next } => {
                let choice = *next;
                *next = (*next + 1) % engines.len();
                choice
            }
            Self::Random { rng } => rng.gen_range(0..engines.len()),
            Self::LeastOutstanding => {
                engines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.outstanding())
                    .expect("a fleet has at least one replica")
                    .0
            }
            Self::JoinShortestQueue => {
                engines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.waiting())
                    .expect("a fleet has at least one replica")
                    .0
            }
        }
    }
}

/// The fleet event loop: route every request online, drain the replicas,
/// merge their populations. Shared by [`FleetInstance::simulate`] and the
/// load-sweep engine (which routes over instances it already prepared and
/// sealed).
///
/// Online-knowledge caveat: a replica's queue-depth sample is taken at
/// the end of each iteration from the requests routed to it *by then*. A
/// request that arrives while an iteration is running is routed when the
/// stepped engines next yield, so it shows up from the replica's next
/// sample on — at most one iteration later than an omniscient observer
/// would report. All latency, throughput, and peak/mean queue accounting
/// is unaffected.
pub(crate) fn run_fleet(
    instance: &ServeInstance<'_>,
    replicas: usize,
    router: RouterPolicy,
    trace: &[Request],
) -> Result<FleetReport, ServeError> {
    ServeInstance::validate_trace(trace);
    // Global trace bounds dominate every replica's share, so one scan
    // sizes all engines and (in the streaming regime) one shared sealed
    // table prices all of them.
    let bounds = TraceBounds::scan(instance, trace);
    let table = instance.pricing_table(trace.len(), &bounds)?;
    // Regime and record decisions run on the *whole* trace length, never
    // a replica's share: every replica must pick the same accumulator
    // regime for the fleet merge to be loss-free, and `Auto` thresholds
    // would otherwise depend on the router's balance.
    let records_on = instance.records_on(trace.len());
    let mut engines: Vec<ReplicaEngine<'_, '_>> = (0..replicas)
        .map(|_| ReplicaEngine::new(instance, table, &bounds, trace.len(), records_on))
        .collect();

    let mut state = RouterState::new(router);
    let mut rejected_ids = Vec::new();
    for r in trace {
        // No replica could ever admit this request (replicas are
        // identical), so the front door rejects it outright instead of
        // letting it occupy a queue.
        if instance.reservation(r) > instance.kv_budget() {
            rejected_ids.push(r.id);
            continue;
        }
        // A single replica needs no observation — every choice is 0 — so
        // skip the stepping and let the lone engine run in batch mode
        // (which also keeps a 1-replica fleet bit-identical to the
        // single-instance path for every policy).
        if replicas > 1 && router.is_state_aware() {
            // Step every replica to the arrival instant so the router
            // observes live queue depth / outstanding work, not stale
            // snapshots.
            for engine in &mut engines {
                engine.advance_to(r.arrival_s)?;
            }
        }
        let choice = state.pick(&engines);
        engines[choice].push(*r);
    }
    for engine in &mut engines {
        engine.finish()?;
    }

    // --- aggregate -------------------------------------------------------
    let parts: Vec<(usize, crate::engine::ReportInputs)> =
        engines.into_iter().map(ReplicaEngine::into_parts).collect();
    let mut ttft = LatencyAccumulator::for_population(trace.len());
    let mut tpot = LatencyAccumulator::for_population(trace.len());
    let mut e2e = LatencyAccumulator::for_population(trace.len());
    let mut completed = 0;
    let mut generated_tokens = 0;
    let mut met = 0;
    let mut met_tokens = 0;
    let mut decode_iterations = 0;
    let mut decode_batch_sum = 0;
    let mut makespan_s = 0.0_f64;
    for (_, inputs) in &parts {
        ttft.merge(&inputs.sink.ttft);
        tpot.merge(&inputs.sink.tpot);
        e2e.merge(&inputs.sink.e2e);
        completed += inputs.sink.completed;
        generated_tokens += inputs.sink.generated_tokens;
        met += inputs.sink.met;
        met_tokens += inputs.sink.met_tokens;
        decode_iterations += inputs.decode_iterations;
        decode_batch_sum += inputs.decode_batch_sum;
        makespan_s = makespan_s.max(inputs.makespan_s);
        debug_assert!(
            inputs.rejected_ids.is_empty(),
            "the router pre-rejects unservable requests"
        );
    }
    let per_s = |count: f64| {
        if makespan_s > 0.0 {
            count / makespan_s
        } else {
            0.0
        }
    };
    let routed: Vec<usize> = parts.iter().map(|(routed, _)| *routed).collect();
    let per_replica: Vec<ServeReport> = parts
        .into_iter()
        .map(|(routed, inputs)| instance.assemble_report(routed, inputs))
        .collect();
    let config = instance.config();
    Ok(FleetReport {
        model: per_replica[0].model.clone(),
        cluster: per_replica[0].cluster.clone(),
        tp: config.tp,
        precision: config.precision,
        replicas,
        gpus: config.tp * replicas,
        router,
        requests: trace.len(),
        completed,
        rejected: rejected_ids.len(),
        rejected_ids,
        makespan: Time::from_secs(makespan_s),
        generated_tokens,
        tokens_per_s: per_s(generated_tokens as f64),
        requests_per_s: per_s(completed as f64),
        mean_decode_batch: if decode_iterations > 0 {
            decode_batch_sum as f64 / decode_iterations as f64
        } else {
            0.0
        },
        ttft: ttft.finish(),
        tpot: tpot.finish(),
        e2e: e2e.finish(),
        kv_peak_utilization: per_replica
            .iter()
            .map(|r| r.kv.peak_utilization)
            .fold(0.0, f64::max),
        slo: SloReport {
            spec: config.slo,
            met,
            attainment: if completed > 0 {
                met as f64 / completed as f64
            } else {
                1.0
            },
            goodput_tokens_per_s: per_s(met_tokens as f64),
            goodput_requests_per_s: per_s(met as f64),
        },
        routed,
        per_replica,
    })
}

/// Generates the trace from `spec` and simulates serving it on a fleet of
/// `config.replicas` identical replicas of `model` over `cluster`.
///
/// # Errors
///
/// Returns [`ServeError`] when the replica strategy cannot serve at all
/// (see [`FleetInstance::new`]).
pub fn simulate_fleet(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &FleetConfig,
    spec: &TraceSpec,
) -> Result<FleetReport, ServeError> {
    simulate_fleet_trace(cluster, model, config, &spec.generate())
}

/// Like [`simulate_fleet`], over an explicit arrival-ordered request
/// list.
///
/// # Errors
///
/// Returns [`ServeError`] for configurations that cannot serve (see
/// [`FleetInstance::new`]).
///
/// # Panics
///
/// Panics if `trace` is not sorted by arrival time or contains a
/// zero-length prompt or output.
pub fn simulate_fleet_trace(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &FleetConfig,
    trace: &[Request],
) -> Result<FleetReport, ServeError> {
    FleetInstance::new(cluster, model, *config)?.simulate(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalProcess, LengthDist};
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn spec(seed: u64, requests: usize, rate: f64) -> TraceSpec {
        TraceSpec {
            seed,
            requests,
            arrival: ArrivalProcess::Poisson { rate_per_s: rate },
            prompt: LengthDist::Uniform { lo: 50, hi: 200 },
            output: LengthDist::Uniform { lo: 2, hi: 24 },
        }
    }

    fn policies() -> [RouterPolicy; 4] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::Random { seed: 99 },
            RouterPolicy::LeastOutstanding,
            RouterPolicy::JoinShortestQueue,
        ]
    }

    #[test]
    fn every_policy_conserves_requests_and_tokens() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let trace = spec(17, 96, 24.0);
        let requested: usize = trace.generate().iter().map(|r| r.output).sum();
        for policy in policies() {
            let config = FleetConfig::new(3, 1).with_router(policy);
            let report = simulate_fleet(&cluster, Arc::clone(&model), &config, &trace).unwrap();
            assert_eq!(
                report.completed + report.rejected,
                report.requests,
                "{policy}"
            );
            assert_eq!(report.rejected, 0, "{policy}");
            assert_eq!(report.generated_tokens, requested, "{policy}");
            assert_eq!(
                report.routed.iter().sum::<usize>(),
                report.requests,
                "{policy}"
            );
            assert_eq!(report.per_replica.len(), 3, "{policy}");
            let replica_completed: usize = report.per_replica.iter().map(|r| r.completed).sum();
            assert_eq!(replica_completed, report.completed, "{policy}");
            assert_eq!(report.gpus, 3, "{policy}");
        }
    }

    #[test]
    fn round_robin_balances_counts_exactly() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_fleet(
            &cluster,
            Arc::new(models::llama2_7b()),
            &FleetConfig::new(4, 1),
            &spec(5, 103, 16.0),
        )
        .unwrap();
        let (min, max) = (
            report.routed.iter().min().unwrap(),
            report.routed.iter().max().unwrap(),
        );
        assert!(max - min <= 1, "round-robin routed {:?}", report.routed);
    }

    /// A single-replica fleet is exactly the single-instance simulation
    /// for every policy: the per-replica report must equal
    /// `ServeInstance::simulate`'s output field for field — the
    /// refactor's ground truth, and what lets the load-sweep run all its
    /// cells through `run_fleet`.
    #[test]
    fn one_replica_fleet_equals_single_instance() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let trace = spec(11, 64, 8.0).generate();
        let single =
            crate::simulate_trace(&cluster, Arc::clone(&model), &ServeConfig::new(2), &trace)
                .unwrap();
        for policy in policies() {
            let fleet = simulate_fleet_trace(
                &cluster,
                Arc::clone(&model),
                &FleetConfig {
                    replicas: 1,
                    router: policy,
                    replica: ServeConfig::new(2),
                },
                &trace,
            )
            .unwrap();
            assert_eq!(fleet.per_replica[0], single, "{policy}");
            assert_eq!(fleet.ttft, single.ttft, "{policy}");
            assert_eq!(fleet.e2e, single.e2e, "{policy}");
            assert_eq!(fleet.makespan, single.makespan, "{policy}");
        }
    }

    /// State-aware routing must never leave one replica idle while
    /// another queues: under sustained load, least-outstanding spreads
    /// requests across all replicas.
    #[test]
    fn state_aware_routing_uses_every_replica() {
        let cluster = presets::dgx_a100_hdr_cluster();
        for policy in [
            RouterPolicy::LeastOutstanding,
            RouterPolicy::JoinShortestQueue,
        ] {
            let report = simulate_fleet(
                &cluster,
                Arc::new(models::llama2_7b()),
                &FleetConfig::new(4, 1).with_router(policy),
                &spec(23, 200, 200.0),
            )
            .unwrap();
            assert!(
                report.routed.iter().all(|&n| n > 0),
                "{policy} starved a replica: {:?}",
                report.routed
            );
        }
    }

    /// Unservable requests are rejected at the router, and every other
    /// request still completes.
    #[test]
    fn oversized_request_is_rejected_at_the_router() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let trace = [
            Request {
                id: 0,
                arrival_s: 0.1,
                prompt: 500_000,
                output: 4,
            },
            Request {
                id: 1,
                arrival_s: 0.2,
                prompt: 100,
                output: 4,
            },
            Request {
                id: 2,
                arrival_s: 0.3,
                prompt: 120,
                output: 4,
            },
        ];
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &FleetConfig::new(2, 1).with_router(RouterPolicy::LeastOutstanding),
            &trace,
        )
        .unwrap();
        assert_eq!(report.rejected_ids, vec![0]);
        assert_eq!(report.completed, 2);
        assert!(report.per_replica.iter().all(|r| r.rejected == 0));
    }

    #[test]
    fn zero_replicas_is_a_clean_error() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = FleetInstance::new(
            &cluster,
            Arc::new(models::llama2_7b()),
            FleetConfig {
                replicas: 0,
                router: RouterPolicy::RoundRobin,
                replica: ServeConfig::new(1),
            },
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn empty_trace_yields_an_empty_fleet_report() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_fleet_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &FleetConfig::new(2, 1),
            &[],
        )
        .unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, Time::ZERO);
        assert_eq!(report.slo.attainment, 1.0);
        assert_eq!(report.routed, vec![0, 0]);
    }

    /// More replicas at the same offered load strictly help the TTFT
    /// tail once a single replica saturates.
    #[test]
    fn replication_relieves_a_saturated_replica() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let trace = spec(7, 128, 50.0);
        let one = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(1, 1),
            &trace,
        )
        .unwrap();
        let four = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(4, 1).with_router(RouterPolicy::LeastOutstanding),
            &trace,
        )
        .unwrap();
        assert!(
            four.ttft.p99 < one.ttft.p99,
            "4 replicas p99 {} vs 1 replica p99 {}",
            four.ttft.p99,
            one.ttft.p99
        );
        assert!(four.slo.attainment >= one.slo.attainment);
    }
}
