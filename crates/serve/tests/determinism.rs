//! Determinism guarantees of the serving simulator, mirroring
//! `crates/sweep/tests/determinism.rs`: the full [`ServeReport`] — every
//! percentile, every per-request record, every queue sample — must be
//! byte-identical (as JSON) for the same seed regardless of thread count,
//! and traces must replay exactly.
//!
//! The simulator itself is single-threaded, but it shares the memoized
//! estimator layer with the rayon-parallel sweep engine; running it under
//! explicitly installed 1- and 8-thread pools (the `RAYON_NUM_THREADS ∈
//! {1, 8}` contract) pins the absence of any thread-count sensitivity in
//! the whole pricing stack.

use optimus_hw::presets;
use optimus_model::presets as models;
use optimus_serve::{simulate, ServeConfig, SloSpec, TraceSpec};
use optimus_units::Time;
use std::sync::Arc;

fn report_json(spec: &TraceSpec) -> String {
    let cluster = presets::dgx_a100_hdr_cluster();
    let config = ServeConfig::new(2).with_slo(SloSpec {
        ttft: Time::from_millis(500.0),
        tpot: Time::from_millis(50.0),
    });
    let report = simulate(&cluster, Arc::new(models::llama2_13b()), &config, spec).unwrap();
    serde_json::to_string(&report).unwrap()
}

/// The same seed must produce a byte-identical report across one thread,
/// eight threads, and repeated runs.
#[test]
fn report_is_byte_identical_across_one_and_eight_threads() {
    let spec = TraceSpec::poisson(1234, 48, 6.0, 180, 24);
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };
    let one = pool(1).install(|| report_json(&spec));
    let eight = pool(8).install(|| report_json(&spec));
    let default_threads = report_json(&spec);
    let repeat = report_json(&spec);
    assert_eq!(one, eight, "1 thread vs 8 threads");
    assert_eq!(one, default_threads, "1 thread vs default threads");
    assert_eq!(default_threads, repeat, "repeated runs");
}

/// Different seeds must actually change the outcome (the determinism above
/// is not a constant function).
#[test]
fn different_seeds_produce_different_reports() {
    let a = report_json(&TraceSpec::poisson(1, 32, 6.0, 180, 24));
    let b = report_json(&TraceSpec::poisson(2, 32, 6.0, 180, 24));
    assert_ne!(a, b);
}

/// The report round-trips through the serialization layer.
#[test]
fn report_roundtrips_through_json() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = simulate(
        &cluster,
        Arc::new(models::llama2_7b()),
        &ServeConfig::new(1),
        &TraceSpec::poisson(7, 12, 3.0, 120, 8),
    )
    .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: optimus_serve::ServeReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
