//! Property tests of the continuous-batching scheduler's invariants,
//! sampled over random traffic shapes (seed, load, prompt/output
//! distributions, TP degree):
//!
//! * the KV reservation never exceeds the device budget;
//! * admission is FIFO — no request is admitted before an earlier arrival;
//! * TTFT ≤ end-to-end latency for every request;
//! * every completed request generates exactly its requested tokens, and
//!   every trace request is accounted for (completed or rejected).
//!
//! Each property samples its own scenario stream, so the suites together
//! cover more traffic shapes than any single test would.

use optimus_hw::presets;
use optimus_model::presets as models;
use optimus_serve::{simulate, ArrivalProcess, LengthDist, ServeConfig, ServeReport, TraceSpec};
use optimus_units::Time;
use proptest::prelude::*;
use std::sync::Arc;

/// One sampled scenario, simulated on llama2-7b / DGX-A100.
fn run(scenario: Scenario) -> (TraceSpec, ServeReport) {
    let ((seed, requests, rate), (prompt, output, tp)) = scenario;
    let spec = TraceSpec {
        seed,
        requests,
        arrival: ArrivalProcess::Poisson { rate_per_s: rate },
        prompt,
        output,
        prefixes: None,
        priority_classes: 1,
    };
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = simulate(
        &cluster,
        Arc::new(models::llama2_7b()),
        &ServeConfig::new(tp),
        &spec,
    )
    .expect("7B always fits an 80 GB device");
    (spec, report)
}

/// The sampled axes: (seed, request count, arrival rate spanning calm to
/// far beyond sustainable) and (prompt shape, output shape, TP degree).
type Scenario = ((u64, usize, f64), (LengthDist, LengthDist, usize));

fn scenario() -> impl Strategy<Value = Scenario> {
    let lengths = |hi_lo: usize, hi_hi: usize| {
        prop_oneof![
            (1usize..=hi_lo).prop_map(|tokens| LengthDist::Fixed { tokens }),
            (1usize..=hi_lo, hi_lo..=hi_hi).prop_map(|(lo, hi)| LengthDist::Uniform { lo, hi }),
        ]
    };
    (
        (
            0u64..1_000_000,
            1usize..24,
            prop_oneof![Just(0.2), Just(2.0), Just(50.0)],
        ),
        (
            lengths(128, 256),
            lengths(8, 24),
            prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scheduler reserves a request's full KV footprint at admission
    /// and releases it at completion, so the tracked peak can never pass
    /// the budget.
    #[test]
    fn kv_budget_is_never_exceeded(s in scenario()) {
        let (_, report) = run(s);
        prop_assert!(
            report.kv.peak <= report.kv.budget,
            "peak KV {} exceeds budget {}",
            report.kv.peak,
            report.kv.budget
        );
        prop_assert!(report.kv.peak_utilization <= 1.0);
    }

    /// Admission is FIFO within memory limits: `per_request` is id-ordered
    /// and ids are arrival-ordered, so admission instants
    /// (arrival + queue_wait) must be monotone — no later arrival ever
    /// jumps the queue, and nothing starves behind a neighbor.
    #[test]
    fn admission_is_fifo(s in scenario()) {
        let (_, report) = run(s);
        for pair in report.per_request.windows(2) {
            let admitted = |m: &optimus_serve::RequestMetrics| m.arrival + m.queue_wait;
            prop_assert!(
                admitted(&pair[0]) <= admitted(&pair[1]),
                "request {} admitted after its successor {}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    /// Per-request latency sanity: the first token precedes (or is) the
    /// last, nothing is free, and `ttft + (n-1)·tpot` reconstructs the
    /// end-to-end latency exactly.
    #[test]
    fn ttft_bounds_e2e(s in scenario()) {
        let (spec, report) = run(s);
        let trace = spec.generate();
        for m in &report.per_request {
            prop_assert!(m.ttft <= m.e2e, "request {}: ttft {} > e2e {}", m.id, m.ttft, m.e2e);
            prop_assert!(m.ttft > Time::ZERO, "a first token cannot be free");
            prop_assert!(m.queue_wait + m.prefill <= m.ttft);
            let requested = trace[m.id].output;
            if let Some(tpot) = m.tpot {
                let rebuilt = m.ttft.secs() + tpot.secs() * (requested - 1) as f64;
                prop_assert!(
                    (rebuilt - m.e2e.secs()).abs() <= 1e-9 * m.e2e.secs().max(1.0),
                    "request {}: ttft/tpot do not reconstruct e2e",
                    m.id
                );
            } else {
                prop_assert_eq!(requested, 1, "tpot omitted only for single-token outputs");
            }
        }
    }

    /// Token and request conservation: every trace request either
    /// completes with exactly its requested output tokens or is rejected
    /// on arrival; iteration counts agree with both.
    #[test]
    fn tokens_and_requests_are_conserved(s in scenario()) {
        let (spec, report) = run(s);
        let trace = spec.generate();
        prop_assert_eq!(report.completed + report.rejected, report.requests);
        prop_assert_eq!(report.per_request.len(), report.completed);
        for m in &report.per_request {
            prop_assert_eq!(
                m.generated, trace[m.id].output,
                "request {} generated {} of {} tokens",
                m.id, m.generated, trace[m.id].output
            );
        }
        let tokens: usize = report.per_request.iter().map(|m| m.generated).sum();
        prop_assert_eq!(tokens, report.generated_tokens);
        prop_assert_eq!(report.prefill_iterations, report.completed);
        prop_assert!(report.slo.met <= report.completed);
        prop_assert!(
            report.decode_iterations <= tokens.max(1),
            "decode iterations batch, never split"
        );
    }
}
