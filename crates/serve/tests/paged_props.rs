//! Property and contract tests of the paged-KV serving path:
//!
//! * pool-occupancy safety — blocks in use never exceed the device pool,
//!   across block sizes, schedulers, and both preemption policies;
//! * conservation under preemption — every admitted request completes
//!   exactly once, with `queue_wait ≤ ttft ≤ e2e` per record;
//! * prefix-cache accounting — refcounted prefix blocks save exactly
//!   whole blocks per hit, and swap traffic balances;
//! * byte-identical `LoadSweepReport`/`FleetReport` JSON across
//!   installed 1- and 8-thread rayon pools for reserved *and* paged
//!   strategies (the determinism contract `fleet_props.rs` pins for the
//!   legacy path).

use optimus_hw::{presets, Precision};
use optimus_model::presets as models;
use optimus_serve::{
    load_sweep, simulate, simulate_fleet, ArrivalProcess, FleetConfig, KvSpec, LengthDist,
    LoadStrategy, LoadSweepSpec, PreemptPolicy, PrefixSpec, RecordMode, RouterPolicy, Scheduler,
    ServeConfig, SloSpec, TraceSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

const PREFIX_TOKENS: usize = 96;

fn prefixed_trace(seed: u64, requests: usize, rate: f64) -> TraceSpec {
    TraceSpec {
        seed,
        requests,
        arrival: ArrivalProcess::Poisson { rate_per_s: rate },
        prompt: LengthDist::Uniform { lo: 150, hi: 400 },
        output: LengthDist::Uniform { lo: 8, hi: 48 },
        prefixes: Some(PrefixSpec {
            pool: 4,
            tokens: PREFIX_TOKENS,
            rate: 0.5,
        }),
        priority_classes: 3,
    }
}

const SCHEDULERS: [Scheduler; 4] = [
    Scheduler::Fifo,
    Scheduler::Priority,
    Scheduler::Sjf,
    Scheduler::PriorityPreempt,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paged pool is a hard capacity: across block sizes, schedulers,
    /// and both preemption policies, peak occupancy never exceeds the
    /// pool, every admitted request completes exactly once (id-ordered
    /// records, token totals matching), per-record latencies are ordered
    /// `queue_wait ≤ ttft ≤ e2e`, prefix hits save exactly the prefix's
    /// whole blocks, and swap traffic balances (every swap-out of a
    /// completing request swaps back in).
    #[test]
    fn paged_pool_never_overflows_and_conserves(
        seed in 1u64..1000,
        block in prop_oneof![Just(8usize), Just(16usize), Just(32usize), Just(64usize)],
        rate in 20.0f64..120.0,
        swap in prop_oneof![Just(false), Just(true)],
        sched in 0usize..4,
    ) {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let spec = prefixed_trace(seed, 150, rate);
        let policy = if swap { PreemptPolicy::Swap } else { PreemptPolicy::Recompute };
        let config = ServeConfig::new(1)
            .with_kv(KvSpec::paged(block).with_policy(policy))
            .with_scheduler(SCHEDULERS[sched])
            .with_records(RecordMode::On);
        let report = simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap();
        let paging = report.paging.expect("paged runs report paging");

        prop_assert!(paging.peak_blocks <= paging.total_blocks,
            "{} blocks in use of a {}-block pool", paging.peak_blocks, paging.total_blocks);
        prop_assert!(paging.peak_block_utilization <= 1.0);

        prop_assert_eq!(report.completed + report.rejected, report.requests);
        prop_assert_eq!(report.per_request.len(), report.completed);
        prop_assert!(
            report.per_request.windows(2).all(|w| w[0].id < w[1].id),
            "each admitted request completes exactly once, in id order"
        );
        prop_assert_eq!(
            report.generated_tokens,
            report.per_request.iter().map(|r| r.generated).sum::<usize>()
        );
        for r in &report.per_request {
            prop_assert!(r.queue_wait <= r.ttft, "request {}: queue_wait > ttft", r.id);
            prop_assert!(r.ttft <= r.e2e, "request {}: ttft > e2e", r.id);
        }

        // A hit shares exactly the prefix's whole blocks — the partial
        // tail block is always private — and frees them exactly once,
        // so total savings are an exact multiple.
        let whole = (PREFIX_TOKENS / block) * block;
        prop_assert_eq!(paging.cached_tokens_saved, paging.prefix_hits * whole);
        prop_assert!(paging.prefix_hits + paging.prefix_misses <= report.requests);

        if swap {
            prop_assert_eq!(paging.swap_outs, paging.swap_ins);
        } else {
            prop_assert_eq!(paging.swap_outs, 0);
            prop_assert_eq!(paging.swap_bytes.bytes(), 0.0);
        }
    }
}

/// A deterministic overload that forces decode-time OOM: long prompts on
/// the 13B model with 16-token blocks. Preemptions must actually happen,
/// and the victims still complete exactly once with ordered latencies —
/// the scenario the proptest above covers statistically, pinned so a
/// regression cannot hide behind a lucky seed.
#[test]
fn preempted_requests_complete_exactly_once() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_13b());
    let spec = TraceSpec {
        seed: 9,
        requests: 120,
        arrival: ArrivalProcess::Poisson { rate_per_s: 100.0 },
        prompt: LengthDist::Uniform { lo: 800, hi: 2000 },
        output: LengthDist::Uniform { lo: 64, hi: 256 },
        prefixes: None,
        priority_classes: 1,
    };
    for policy in [PreemptPolicy::Recompute, PreemptPolicy::Swap] {
        let config = ServeConfig::new(1)
            .with_kv(KvSpec::paged(16).with_policy(policy))
            .with_records(RecordMode::On);
        let report = simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap();
        let paging = report.paging.expect("paged runs report paging");
        assert!(
            paging.preemptions > 0,
            "{policy}: the overload must actually preempt"
        );
        assert_eq!(
            report.completed + report.rejected,
            report.requests,
            "{policy}"
        );
        assert_eq!(report.per_request.len(), report.completed, "{policy}");
        assert!(
            report.per_request.windows(2).all(|w| w[0].id < w[1].id),
            "{policy}: one record per admitted request"
        );
        for r in &report.per_request {
            assert!(r.queue_wait <= r.ttft, "{policy}: request {}", r.id);
            assert!(r.ttft <= r.e2e, "{policy}: request {}", r.id);
        }
        assert!(paging.peak_blocks <= paging.total_blocks, "{policy}");
    }
}

fn sweep_spec() -> LoadSweepSpec {
    LoadSweepSpec {
        seed: 77,
        requests: 300,
        prompt: LengthDist::Uniform { lo: 100, hi: 400 },
        output: LengthDist::Uniform { lo: 8, hi: 48 },
        rates: vec![10.0, 40.0],
        strategies: vec![
            LoadStrategy::single(1, Precision::Fp16),
            LoadStrategy::single(1, Precision::Fp16)
                .with_kv(KvSpec::paged(32))
                .with_scheduler(Scheduler::Sjf),
            LoadStrategy::single(1, Precision::Fp16)
                .with_kv(KvSpec::paged(16).with_policy(PreemptPolicy::Swap))
                .with_scheduler(Scheduler::PriorityPreempt),
        ],
        slo: SloSpec::default(),
        router: RouterPolicy::RoundRobin,
        faults: None,
        prefixes: Some(PrefixSpec {
            pool: 4,
            tokens: 128,
            rate: 0.6,
        }),
        priority_classes: 2,
    }
}

/// The whole sweep grid — reserved and paged cells alike — must be
/// byte-identical (as JSON) across installed 1- and 8-thread rayon
/// pools and the default pool.
#[test]
fn load_sweep_json_is_byte_identical_across_one_and_eight_threads() {
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };
    let run = || {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        serde_json::to_string(&load_sweep(&cluster, &model, &sweep_spec())).unwrap()
    };
    let one = pool(1).install(run);
    let eight = pool(8).install(run);
    let default_threads = run();
    assert_eq!(one, eight, "1 vs 8 threads");
    assert_eq!(one, default_threads, "1 vs default threads");
}

/// A paged, prefix-cached, priority-scheduled fleet keeps the same
/// cross-pool byte-identity contract the reserved fleet pins in
/// `fleet_props.rs`.
#[test]
fn paged_fleet_json_is_byte_identical_across_one_and_eight_threads() {
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };
    let run = || {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let config = FleetConfig {
            replicas: 3,
            router: RouterPolicy::LeastOutstanding,
            replica: ServeConfig::new(1)
                .with_kv(KvSpec::paged(16))
                .with_scheduler(Scheduler::Priority),
            faults: optimus_serve::FaultSpec::none(),
        };
        let report =
            simulate_fleet(&cluster, model, &config, &prefixed_trace(21, 400, 80.0)).unwrap();
        serde_json::to_string(&report).unwrap()
    };
    let one = pool(1).install(run);
    let eight = pool(8).install(run);
    assert_eq!(one, eight, "1 vs 8 threads");
}
