//! Property and contract tests of the multi-replica fleet simulator:
//!
//! * token/request conservation across replicas for every router policy,
//!   at streaming (>10k-request) scale;
//! * byte-identical `FleetReport` JSON across installed 1- and 8-thread
//!   rayon pools and repeated runs (the determinism contract every
//!   parallel-adjacent subsystem ships);
//! * scaling sanity: R replicas at R× the single-replica rate keep SLO
//!   attainment within a small tolerance of one replica at the base rate
//!   under stateless (random-thinning) routing — replication neither
//!   manufactures nor destroys capacity per device.

use optimus_hw::presets;
use optimus_model::presets as models;
use optimus_serve::{
    simulate, simulate_fleet, ArrivalProcess, FaultSpec, FleetConfig, LengthDist, RouterPolicy,
    ServeConfig, TraceSpec,
};
use std::sync::Arc;

fn trace(seed: u64, requests: usize, rate: f64) -> TraceSpec {
    TraceSpec {
        seed,
        requests,
        arrival: ArrivalProcess::Poisson { rate_per_s: rate },
        prompt: LengthDist::Uniform { lo: 50, hi: 300 },
        output: LengthDist::Uniform { lo: 4, hi: 48 },
        prefixes: None,
        priority_classes: 1,
    }
}

fn policies() -> [RouterPolicy; 4] {
    [
        RouterPolicy::RoundRobin,
        RouterPolicy::Random { seed: 31 },
        RouterPolicy::LeastOutstanding,
        RouterPolicy::JoinShortestQueue,
    ]
}

/// Conservation across replicas at streaming scale: every trace request
/// is routed to exactly one replica (or rejected at the router), every
/// routed request completes with its requested tokens, and the fleet
/// aggregates equal the per-replica sums — for every policy.
#[test]
fn fleet_conserves_tokens_and_requests_at_scale() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let spec = trace(3, 30_000, 120.0);
    let requested: usize = spec.generate().iter().map(|r| r.output).sum();
    for policy in policies() {
        let config = FleetConfig::new(4, 1).with_router(policy);
        let report = simulate_fleet(&cluster, Arc::clone(&model), &config, &spec).unwrap();
        assert_eq!(report.requests, 30_000, "{policy}");
        assert_eq!(
            report.completed + report.rejected,
            report.requests,
            "{policy}"
        );
        assert_eq!(report.rejected, 0, "{policy}");
        assert_eq!(report.generated_tokens, requested, "{policy}");
        assert_eq!(
            report.routed.iter().sum::<usize>(),
            report.requests,
            "{policy}"
        );
        let sums = report.per_replica.iter().fold((0, 0, 0), |acc, r| {
            (
                acc.0 + r.completed,
                acc.1 + r.generated_tokens,
                acc.2 + r.slo.met,
            )
        });
        assert_eq!(sums.0, report.completed, "{policy}");
        assert_eq!(sums.1, report.generated_tokens, "{policy}");
        assert_eq!(sums.2, report.slo.met, "{policy}");
        // Fleet latency counts cover the merged population exactly.
        assert_eq!(report.ttft.count, report.completed, "{policy}");
        assert_eq!(report.e2e.count, report.completed, "{policy}");
        assert!(report.ttft.p50 <= report.ttft.p99, "{policy}");
        assert!(report.ttft.p99 <= report.ttft.max, "{policy}");
        // The fleet makespan is the slowest replica's.
        let slowest = report.per_replica.iter().map(|r| r.makespan).max().unwrap();
        assert_eq!(report.makespan, slowest, "{policy}");
        // KV invariants hold on every replica.
        for r in &report.per_replica {
            assert!(r.kv.peak <= r.kv.budget, "{policy}");
        }
    }
}

fn fleet_json(spec: &TraceSpec, policy: RouterPolicy) -> String {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_13b());
    let config = FleetConfig {
        replicas: 3,
        router: policy,
        replica: ServeConfig::new(2),
        faults: FaultSpec::none(),
    };
    let report = simulate_fleet(&cluster, model, &config, spec).unwrap();
    serde_json::to_string(&report).unwrap()
}

/// The full `FleetReport` — merged percentiles, per-replica reports,
/// queue series, routed counts — must be byte-identical (as JSON) across
/// installed 1- and 8-thread pools and repeated runs, for both a
/// stateless and a state-aware policy, above and below the streaming
/// cutover.
#[test]
fn fleet_report_is_byte_identical_across_one_and_eight_threads() {
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };
    for (requests, rate) in [(64usize, 8.0), (12_000usize, 150.0)] {
        let spec = trace(1234, requests, rate);
        for policy in [
            RouterPolicy::Random { seed: 5 },
            RouterPolicy::LeastOutstanding,
        ] {
            let one = pool(1).install(|| fleet_json(&spec, policy));
            let eight = pool(8).install(|| fleet_json(&spec, policy));
            let default_threads = fleet_json(&spec, policy);
            assert_eq!(one, eight, "{requests} requests, {policy}: 1 vs 8 threads");
            assert_eq!(
                one, default_threads,
                "{requests} requests, {policy}: 1 vs default threads"
            );
        }
    }
}

/// Different router seeds must actually change a random fleet's outcome
/// (the determinism above is not a constant function).
#[test]
fn different_router_seeds_differ() {
    let spec = trace(7, 200, 60.0);
    let a = fleet_json(&spec, RouterPolicy::Random { seed: 1 });
    let b = fleet_json(&spec, RouterPolicy::Random { seed: 2 });
    assert_ne!(a, b);
}

/// The fleet report round-trips through the serialization layer.
#[test]
fn fleet_report_roundtrips_through_json() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = simulate_fleet(
        &cluster,
        Arc::new(models::llama2_7b()),
        &FleetConfig::new(2, 1).with_router(RouterPolicy::JoinShortestQueue),
        &trace(7, 48, 12.0),
    )
    .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: optimus_serve::FleetReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

/// Scaling sanity: with stateless random routing, splitting a Poisson
/// stream of rate R·λ across R replicas gives each replica a Poisson(λ)
/// stream (thinning), so the fleet's SLO attainment at R× the load must
/// sit within a small tolerance of one replica at the base load. The
/// operating point (λ = 40/s on llama2-7b TP1) is just below the
/// saturation knee, where attainment is high but not pinned at 1.0.
#[test]
fn r_replicas_at_r_times_the_rate_match_single_replica_attainment() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    const R: usize = 4;
    const BASE_RATE: f64 = 40.0;
    let single = simulate(
        &cluster,
        Arc::clone(&model),
        &ServeConfig::new(1),
        &trace(9, 5_000, BASE_RATE),
    )
    .unwrap();
    let fleet = simulate_fleet(
        &cluster,
        Arc::clone(&model),
        &FleetConfig::new(R, 1).with_router(RouterPolicy::Random { seed: 17 }),
        &trace(9, R * 5_000, R as f64 * BASE_RATE),
    )
    .unwrap();
    assert!(
        single.slo.attainment > 0.9,
        "the operating point must be below the knee: {}",
        single.slo.attainment
    );
    let delta = (fleet.slo.attainment - single.slo.attainment).abs();
    assert!(
        delta <= 0.05,
        "fleet attainment {} vs single-replica {} (Δ {delta})",
        fleet.slo.attainment,
        single.slo.attainment
    );
    // Per-device throughput is preserved within the same tolerance band.
    let per_device = fleet.tokens_per_s / R as f64;
    assert!(
        (per_device - single.tokens_per_s).abs() / single.tokens_per_s <= 0.1,
        "fleet per-device {per_device} tok/s vs single {}",
        single.tokens_per_s
    );
}

/// State-aware routing beats (or ties) round-robin on the TTFT tail when
/// request sizes are heterogeneous enough for blind balance to hurt: the
/// router that sees queue state never does worse at deep saturation.
#[test]
fn least_outstanding_never_trails_round_robin_badly() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let spec = TraceSpec {
        seed: 21,
        requests: 600,
        arrival: ArrivalProcess::Poisson { rate_per_s: 180.0 },
        // Wide length spread: blind routing occasionally stacks several
        // heavy requests on one replica.
        prompt: LengthDist::Uniform { lo: 20, hi: 1500 },
        output: LengthDist::Uniform { lo: 1, hi: 96 },
        prefixes: None,
        priority_classes: 1,
    };
    let rr = simulate_fleet(&cluster, Arc::clone(&model), &FleetConfig::new(4, 1), &spec).unwrap();
    let lo = simulate_fleet(
        &cluster,
        Arc::clone(&model),
        &FleetConfig::new(4, 1).with_router(RouterPolicy::LeastOutstanding),
        &spec,
    )
    .unwrap();
    assert!(
        lo.e2e.p99.secs() <= rr.e2e.p99.secs() * 1.05,
        "least-outstanding p99 {} must not trail round-robin {}",
        lo.e2e.p99,
        rr.e2e.p99
    );
}
