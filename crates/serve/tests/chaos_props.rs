//! Chaos property suite of the resilience-aware fleet simulator:
//!
//! * request conservation under seeded churn — every arrived request is
//!   completed or rejected, requeued work requeues-then-completes, and
//!   `routed` accounts for every assignment including requeues — for all
//!   four router policies at streaming (30k-request) scale, across a
//!   proptest grid of MTBF/MTTR/straggler values;
//! * byte-identical `FleetReport` JSON under fault injection across
//!   installed 1- and 8-thread rayon pools (the determinism contract);
//! * fault-seed sensitivity: a different fault seed must change the
//!   outcome (the determinism above is not a constant function);
//! * serde roundtrip of the fault and availability report fields;
//! * the degenerate pin: an inactive `FaultSpec` produces a `FleetReport`
//!   field-exact identical to the fault-free path, for every policy;
//! * monotonicity sanity: SLO attainment under churn never exceeds the
//!   fault-free attainment at the same offered rate, and requeued
//!   requests keep their original arrival and never report a first token
//!   before it.

use optimus_hw::presets;
use optimus_model::presets as models;
use optimus_serve::{
    simulate_fleet, ArrivalProcess, DegradeMode, FaultDomain, FaultSpec, FleetConfig,
    FleetInstance, FleetReport, LengthDist, RouterPolicy, ServeConfig, TraceSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

fn trace(seed: u64, requests: usize, rate: f64) -> TraceSpec {
    TraceSpec {
        seed,
        requests,
        arrival: ArrivalProcess::Poisson { rate_per_s: rate },
        prompt: LengthDist::Uniform { lo: 50, hi: 300 },
        output: LengthDist::Uniform { lo: 4, hi: 48 },
        prefixes: None,
        priority_classes: 1,
    }
}

fn straggler_grid() -> impl Strategy<Value = (f64, f64)> {
    prop_oneof![Just((0.0, 1.0)), Just((0.4, 2.0))]
}

fn policies() -> [RouterPolicy; 4] {
    [
        RouterPolicy::RoundRobin,
        RouterPolicy::Random { seed: 31 },
        RouterPolicy::LeastOutstanding,
        RouterPolicy::JoinShortestQueue,
    ]
}

/// The conservation ledger every chaos run must balance, whatever the
/// churn: arrivals split into completions and rejections; requeued work
/// requeues-then-completes; `routed` counts every assignment.
fn assert_conserved(report: &FleetReport, spec: &TraceSpec, label: &str) {
    let requested: usize = spec.generate().iter().map(|r| r.output).sum();
    assert_eq!(report.requests, spec.requests, "{label}");
    assert_eq!(
        report.completed + report.rejected,
        report.requests,
        "{label}"
    );
    assert_eq!(report.rejected, 0, "{label}");
    // Requeue-then-complete: dropped tokens are regenerated in full.
    assert_eq!(report.generated_tokens, requested, "{label}");
    let avail = &report.availability;
    assert_eq!(
        report.routed.iter().sum::<usize>(),
        report.requests - report.rejected + avail.requeues,
        "{label}"
    );
    assert_eq!(avail.requeued_ids.len(), avail.requeued_requests, "{label}");
    assert!(
        avail.requeued_ids.windows(2).all(|w| w[0] < w[1]),
        "{label}: requeued ids must be ascending and distinct"
    );
    assert!(avail.requeues >= avail.requeued_requests, "{label}");
    assert!(
        avail.requeued_ids.iter().all(|&id| id < report.requests),
        "{label}"
    );
    // Availability is schedule-based and well-formed.
    assert!(
        avail.availability > 0.0 && avail.availability <= 1.0,
        "{label}: availability {}",
        avail.availability
    );
    let per_replica_sum: f64 = avail.per_replica_downtime.iter().map(|t| t.secs()).sum();
    assert!(
        (per_replica_sum - avail.downtime.secs()).abs() <= 1e-9 * (1.0 + per_replica_sum),
        "{label}: per-replica downtime must decompose the total"
    );
    // Merged latency populations cover exactly the completed requests.
    assert_eq!(report.ttft.count, report.completed, "{label}");
    assert_eq!(report.e2e.count, report.completed, "{label}");
}

proptest! {
    // Each case runs 30k requests through four routers; a handful of
    // cases covers the MTBF/MTTR/straggler grid without dominating the
    // suite's wall-clock.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Conservation at streaming scale under churn, for every router
    /// policy, across crash tempo and straggler severity.
    #[test]
    fn chaos_fleet_conserves_requests_at_scale(
        fault_seed in 1u64..=1000,
        mtbf_s in prop_oneof![Just(8.0f64), Just(25.0), Just(90.0)],
        mttr_s in prop_oneof![Just(1.5f64), Just(4.0)],
        straggler in straggler_grid(),
    ) {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let spec = trace(3, 30_000, 120.0);
        let faults = FaultSpec::crashes(fault_seed, mtbf_s, mttr_s)
            .with_stragglers(straggler.0, straggler.1);
        for policy in policies() {
            let config = FleetConfig::new(4, 1)
                .with_router(policy)
                .with_faults(faults.clone());
            let report =
                simulate_fleet(&cluster, Arc::clone(&model), &config, &spec).unwrap();
            let label = format!(
                "{policy}, mtbf {mtbf_s}, mttr {mttr_s}, stragglers {straggler:?}, seed {fault_seed}"
            );
            assert_conserved(&report, &spec, &label);
            prop_assert_eq!(report.faults, Some(faults.clone().json_safe()), "{}", label);
        }
    }
}

fn chaos_json(spec: &TraceSpec, policy: RouterPolicy, faults: FaultSpec) -> String {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_13b());
    let config = FleetConfig {
        replicas: 3,
        router: policy,
        replica: ServeConfig::new(2),
        faults,
    };
    let report = simulate_fleet(&cluster, model, &config, spec).unwrap();
    serde_json::to_string(&report).unwrap()
}

/// The full faulted `FleetReport` — requeue bookkeeping, availability
/// metrics, merged percentiles — must be byte-identical (as JSON) across
/// installed 1- and 8-thread pools and repeated runs, above and below
/// the streaming cutover.
#[test]
fn chaos_report_is_byte_identical_across_one_and_eight_threads() {
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };
    let faults = FaultSpec::crashes(11, 12.0, 3.0).with_stragglers(0.34, 1.8);
    for (requests, rate) in [(64usize, 8.0), (12_000usize, 150.0)] {
        let spec = trace(1234, requests, rate);
        for policy in [
            RouterPolicy::Random { seed: 5 },
            RouterPolicy::LeastOutstanding,
        ] {
            let one = pool(1).install(|| chaos_json(&spec, policy, faults.clone()));
            let eight = pool(8).install(|| chaos_json(&spec, policy, faults.clone()));
            let default_threads = chaos_json(&spec, policy, faults.clone());
            assert_eq!(one, eight, "{requests} requests, {policy}: 1 vs 8 threads");
            assert_eq!(
                one, default_threads,
                "{requests} requests, {policy}: 1 vs default threads"
            );
        }
    }
}

/// A different fault seed must actually change the outcome, and the
/// crash schedule it implies must show up in the availability metrics.
#[test]
fn different_fault_seeds_differ() {
    let spec = trace(7, 400, 60.0);
    let a = chaos_json(
        &spec,
        RouterPolicy::LeastOutstanding,
        FaultSpec::crashes(1, 6.0, 2.0),
    );
    let b = chaos_json(
        &spec,
        RouterPolicy::LeastOutstanding,
        FaultSpec::crashes(2, 6.0, 2.0),
    );
    assert_ne!(a, b);
    let back: FleetReport = serde_json::from_str(&a).unwrap();
    assert!(back.availability.crashes > 0);
    assert!(back.availability.downtime.secs() > 0.0);
}

/// The faulted report — `faults` spec and `availability` block included —
/// round-trips through the serialization layer.
#[test]
fn chaos_report_roundtrips_through_json() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = simulate_fleet(
        &cluster,
        Arc::new(models::llama2_7b()),
        &FleetConfig::new(2, 1)
            .with_router(RouterPolicy::JoinShortestQueue)
            .with_faults(FaultSpec::crashes(9, 5.0, 2.0).with_stragglers(0.5, 1.5)),
        &trace(7, 300, 40.0),
    )
    .unwrap();
    assert!(report.faults.is_some());
    let json = serde_json::to_string(&report).unwrap();
    let back: FleetReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.availability, report.availability);
}

/// The degenerate pin: an inactive fault spec — `FaultSpec::none()`, or
/// any spec whose knobs are all at their identity values regardless of
/// its seed — produces a `FleetReport` field-exact identical to the
/// fault-free path, for every router policy. This is the guarantee that
/// the fault machinery costs nothing when disabled.
#[test]
fn inactive_fault_spec_is_bit_identical_to_the_fault_free_path() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let spec = trace(21, 500, 80.0);
    let mut seeded_noop = FaultSpec::none();
    seeded_noop.seed = 99;
    // A disabled domain (mtbf 0) is as inert as no domain at all.
    let domain_noop = FaultSpec::none().with_domain(FaultDomain::new(vec![0, 1], 0.0, 0.0));
    assert!(domain_noop.is_none());
    for policy in policies() {
        let plain = simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(3, 1).with_router(policy),
            &spec,
        )
        .unwrap();
        for inactive in [FaultSpec::none(), seeded_noop.clone(), domain_noop.clone()] {
            let gated = simulate_fleet(
                &cluster,
                Arc::clone(&model),
                &FleetConfig::new(3, 1)
                    .with_router(policy)
                    .with_faults(inactive.clone()),
                &spec,
            )
            .unwrap();
            assert_eq!(gated, plain, "{policy}, {inactive:?}");
            assert_eq!(gated.faults, None, "{policy}");
            assert_eq!(
                serde_json::to_string(&gated).unwrap(),
                serde_json::to_string(&plain).unwrap(),
                "{policy}"
            );
        }
    }
}

/// Rack-wide chaos: shared failure domains that take whole replica
/// groups down together still balance the conservation ledger for every
/// router policy — including the moments when a domain outage leaves the
/// whole fleet down and the front door blocks.
#[test]
fn rack_wide_outages_conserve_across_all_policies() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let spec = trace(17, 2_000, 90.0);
    // Two racks of two replicas each; no per-replica crash process, so
    // every outage is a shared one.
    let faults = FaultSpec::none()
        .with_domain(FaultDomain::new(vec![0, 1], 12.0, 2.0))
        .with_domain(FaultDomain::new(vec![2, 3], 18.0, 2.5));
    assert!(faults.has_domains() && !faults.has_crashes());
    for policy in policies() {
        let config = FleetConfig::new(4, 1)
            .with_router(policy)
            .with_faults(faults.clone());
        let report = simulate_fleet(&cluster, Arc::clone(&model), &config, &spec).unwrap();
        let label = format!("{policy}, rack domains");
        assert_conserved(&report, &spec, &label);
        assert!(
            report.availability.crashes > 0,
            "{label}: 12 s rack MTBF must outage"
        );
        assert!(
            report.availability.requeued_requests > 0,
            "{label}: rack outages must requeue live work"
        );
    }
}

/// Domain downtime decomposes into per-replica accounting: with
/// domain-only faults, each member replica's scheduled downtime is
/// exactly its domain's shared downtime, and the fleet total is the
/// member-weighted sum of the per-domain figures.
#[test]
fn domain_downtime_decomposes_into_per_replica_accounting() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let spec = trace(23, 800, 70.0);
    let faults = FaultSpec::none()
        .with_domain(FaultDomain::new(vec![0, 1], 10.0, 2.0))
        .with_domain(FaultDomain::new(vec![2], 16.0, 3.0));
    let report = simulate_fleet(
        &cluster,
        Arc::clone(&model),
        &FleetConfig::new(4, 1)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_faults(faults.clone()),
        &spec,
    )
    .unwrap();
    let avail = &report.availability;
    assert_eq!(avail.per_domain_downtime.len(), 2);
    assert_eq!(avail.per_replica_downtime.len(), 4);
    // Members inherit exactly the shared schedule; non-members none.
    assert_eq!(avail.per_replica_downtime[0], avail.per_domain_downtime[0]);
    assert_eq!(avail.per_replica_downtime[1], avail.per_domain_downtime[0]);
    assert_eq!(avail.per_replica_downtime[2], avail.per_domain_downtime[1]);
    assert_eq!(avail.per_replica_downtime[3].secs(), 0.0);
    let weighted: f64 =
        2.0 * avail.per_domain_downtime[0].secs() + avail.per_domain_downtime[1].secs();
    assert!(
        (weighted - avail.downtime.secs()).abs() <= 1e-9 * (1.0 + weighted),
        "member-weighted domain downtime {weighted} must equal the total {}",
        avail.downtime.secs()
    );
    // The shared schedule itself is what the members observed: both rack
    // members went down together for every window.
    let horizon = report.makespan.secs();
    let shared = faults.domain_outage_windows(0, horizon);
    assert!(!shared.is_empty());
    assert_eq!(faults.outage_windows(0, horizon), shared);
    assert_eq!(faults.outage_windows(1, horizon), shared);
}

/// Link-mode degradation prices the slowdown through the interconnect:
/// a TP-2 fleet (collectives on every iteration) lands strictly between
/// the clean run and the flat-mode slowdown of the same multiplier,
/// while `FleetInstance::new` — which cannot re-price its borrowed
/// cluster — rejects the spec with a pointer to the entry points that
/// can.
#[test]
fn link_mode_degradation_prices_through_the_interconnect() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_13b());
    let spec = trace(29, 300, 25.0);
    let run = |faults: FaultSpec| {
        simulate_fleet(
            &cluster,
            Arc::clone(&model),
            &FleetConfig::new(2, 2).with_faults(faults),
            &spec,
        )
        .unwrap()
    };
    let clean = run(FaultSpec::none());
    let link = run(FaultSpec::none()
        .with_degradation(3.0)
        .with_degrade_mode(DegradeMode::Link));
    let flat = run(FaultSpec::none().with_degradation(3.0));
    assert!(
        clean.e2e.mean < link.e2e.mean,
        "thinner links must slow a TP-2 fleet: clean {} vs link {}",
        clean.e2e.mean,
        link.e2e.mean
    );
    assert!(
        link.e2e.mean < flat.e2e.mean,
        "link-mode slows only the collectives, flat slows everything: link {} vs flat {}",
        link.e2e.mean,
        flat.e2e.mean
    );
    // The constructor that borrows the cluster refuses the spec instead
    // of silently pricing over undegraded links.
    let err = FleetInstance::new(
        &cluster,
        Arc::clone(&model),
        FleetConfig::new(2, 2).with_faults(
            FaultSpec::none()
                .with_degradation(3.0)
                .with_degrade_mode(DegradeMode::Link),
        ),
    )
    .unwrap_err();
    assert!(err.to_string().contains("link-mode"), "{err}");
    // An inert link-mode spec (multiplier 1) stays bit-identical.
    let inert = run(FaultSpec::none().with_degrade_mode(DegradeMode::Link));
    assert_eq!(inert, clean);
}

/// Churn only hurts: at the same offered rate, SLO attainment under
/// crashes never exceeds the fault-free attainment, goodput per
/// up-replica-second stays finite, and makespan never shrinks.
#[test]
fn attainment_under_churn_never_exceeds_fault_free() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    // Just below the 4-replica knee: attainment is high but not pinned
    // at 1.0, so a drop is observable.
    let spec = trace(9, 5_000, 150.0);
    let clean = simulate_fleet(
        &cluster,
        Arc::clone(&model),
        &FleetConfig::new(4, 1).with_router(RouterPolicy::LeastOutstanding),
        &spec,
    )
    .unwrap();
    let churned = simulate_fleet(
        &cluster,
        Arc::clone(&model),
        &FleetConfig::new(4, 1)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_faults(FaultSpec::crashes(5, 8.0, 3.0)),
        &spec,
    )
    .unwrap();
    assert!(churned.availability.crashes > 0, "churn must be real");
    assert!(
        churned.slo.attainment <= clean.slo.attainment,
        "churned attainment {} must not exceed fault-free {}",
        churned.slo.attainment,
        clean.slo.attainment
    );
    assert!(churned.makespan >= clean.makespan);
    assert!(churned
        .availability
        .goodput_tokens_per_up_replica_s
        .is_finite());
}

/// Requeued requests keep their original arrival time: the record a
/// requeued request finally produces carries the trace arrival, appears
/// on exactly one replica, and never reports a first token before that
/// arrival (its TTFT clock keeps running across the crash).
#[test]
fn requeued_requests_keep_their_arrival_and_ttft_ordering() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let spec = trace(13, 600, 60.0);
    let arrivals: Vec<f64> = spec.generate().iter().map(|r| r.arrival_s).collect();
    let report = simulate_fleet(
        &cluster,
        Arc::clone(&model),
        &FleetConfig::new(3, 1)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_faults(FaultSpec::crashes(5, 6.0, 2.0)),
        &spec,
    )
    .unwrap();
    let avail = &report.availability;
    assert!(
        avail.requeued_requests > 0,
        "the scenario must actually requeue work"
    );
    for &id in &avail.requeued_ids {
        let hits: Vec<_> = report
            .per_replica
            .iter()
            .flat_map(|r| r.per_request.iter().filter(|m| m.id == id))
            .collect();
        assert_eq!(hits.len(), 1, "request {id} must complete exactly once");
        let m = hits[0];
        assert!(
            (m.arrival.secs() - arrivals[id]).abs() <= 1e-12,
            "request {id} must keep its trace arrival"
        );
        // TTFT is measured from arrival and includes the time lost to the
        // crash; it can never precede the arrival it is measured from.
        assert!(m.ttft.secs() > 0.0, "request {id}");
        assert!(m.queue_wait <= m.ttft, "request {id}");
        assert!(m.ttft <= m.e2e, "request {id}");
    }
}
