//! Property tests of the streaming (million-request-scale) machinery:
//!
//! * the log-histogram percentile estimates agree with the exact
//!   nearest-rank statistics to within one bin width;
//! * the scheduler's conservation invariants (tokens, requests, KV
//!   budget) hold at 100k-request scale on the sealed-table fast path;
//! * load-sweep reports are byte-identical across installed 1- and
//!   8-thread rayon pools.

use optimus_hw::{presets, Precision};
use optimus_model::presets as models;
use optimus_serve::stats::HISTOGRAM_BINS_PER_OCTAVE;
use optimus_serve::{
    load_sweep, simulate, LatencyStats, LengthDist, LoadStrategy, LoadSweepSpec, LogHistogram,
    PricingMode, RouterPolicy, ServeConfig, SloSpec, TraceSpec,
};
use optimus_units::Time;
use proptest::prelude::*;
use std::sync::Arc;

// --- histogram vs exact ---------------------------------------------------

/// Latency populations spanning microseconds to minutes with heavy
/// duplication (the shapes TTFT/TPOT populations actually take).
fn population() -> impl Strategy<Value = Vec<Time>> {
    proptest::collection::vec((1u64..=60_000_000, 1usize..=20), 1..400).prop_map(|pairs| {
        pairs
            .into_iter()
            .flat_map(|(us, copies)| std::iter::repeat_n(Time::from_micros(us as f64), copies))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every histogram percentile lands within one log-scale bin width
    /// above the exact nearest-rank order statistic (the bin's upper edge
    /// is the conservative representative).
    #[test]
    fn histogram_percentiles_agree_with_exact_within_one_bin(values in population()) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let exact = LatencyStats::from_times(&values);
        let bin_ratio = 2f64.powf(1.0 / HISTOGRAM_BINS_PER_OCTAVE as f64);
        for (q, e) in [(0.50, exact.p50), (0.90, exact.p90), (0.99, exact.p99)] {
            let est = h.percentile(q);
            prop_assert!(
                est >= e && est.secs() <= e.secs() * bin_ratio,
                "q={q}: histogram {est} vs exact {e} (ratio {})",
                est.secs() / e.secs()
            );
        }
    }
}

// --- 100k-request conservation on the sealed path -------------------------

proptest! {
    // Each case simulates 100k requests; two sampled scenarios keep the
    // suite affordable in debug builds while still exercising the sealed
    // table, the slot recycling, and the completion ring at scale.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Token, request, and KV-budget conservation at 100k-request scale:
    /// the streaming machinery (sealed pricing, recycled slots, epoch
    /// ring, histogram stats) must lose nothing an exact-mode run keeps.
    #[test]
    fn conservation_holds_at_100k_scale(
        seed in 0u64..1000,
        rate in prop_oneof![Just(20.0), Just(200.0)],
        tp in prop_oneof![Just(1usize), Just(2usize)],
    ) {
        let cluster = presets::dgx_a100_hdr_cluster();
        let spec = TraceSpec {
            seed,
            requests: 100_000,
            arrival: optimus_serve::ArrivalProcess::Poisson { rate_per_s: rate },
            prompt: LengthDist::Uniform { lo: 50, hi: 300 },
            output: LengthDist::Uniform { lo: 4, hi: 48 },
            prefixes: None,
            priority_classes: 1,
        };
        let report = simulate(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(tp),
            &spec,
        )
        .unwrap();

        // Request conservation.
        prop_assert_eq!(report.completed + report.rejected, report.requests);
        prop_assert_eq!(report.rejected, 0, "7B always admits these shapes");
        prop_assert_eq!(report.prefill_iterations, report.completed);

        // Token conservation against the trace itself.
        let requested: usize = spec.generate().iter().map(|r| r.output).sum();
        prop_assert_eq!(report.generated_tokens, requested);
        prop_assert!(report.decode_iterations <= requested);

        // KV budget invariants.
        prop_assert!(report.kv.peak <= report.kv.budget);
        prop_assert!(report.kv.peak_utilization <= 1.0);

        // Streaming-mode shape: no records, exact counts in the stats.
        prop_assert!(report.per_request.is_empty(), "records default off at 100k");
        prop_assert_eq!(report.ttft.count, report.completed);
        prop_assert_eq!(report.e2e.count, report.completed);
        prop_assert!(report.ttft.p50 <= report.ttft.p99);
        prop_assert!(report.ttft.p99 <= report.ttft.max);
        prop_assert!(report.slo.met <= report.completed);
    }
}

// --- load-sweep determinism across thread pools ---------------------------

fn sweep_json(spec: &LoadSweepSpec) -> String {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_7b());
    let report = load_sweep(&cluster, &model, spec);
    serde_json::to_string(&report).unwrap()
}

/// The load-sweep grid runs rayon-parallel, but cells are collected in
/// grid order and every sealed table is built from distribution-derived
/// bounds before any cell runs — so the JSON must be byte-identical
/// across installed 1- and 8-thread pools, and across repeated runs.
#[test]
fn load_sweep_json_is_byte_identical_across_one_and_eight_threads() {
    // Crosses the exact-mode limit so the sealed-table path (the one with
    // a first-seal-wins hazard if bounds ever became trace-dependent) is
    // the path under test.
    let spec = LoadSweepSpec {
        seed: 7,
        requests: 12_000,
        prompt: LengthDist::Uniform { lo: 40, hi: 160 },
        output: LengthDist::Uniform { lo: 2, hi: 16 },
        rates: vec![5.0, 80.0],
        strategies: vec![
            LoadStrategy::single(1, Precision::Fp16),
            LoadStrategy::single(2, Precision::Fp16),
            // A multi-replica strategy exercises the fleet path through
            // the same byte-identical contract.
            LoadStrategy::single(1, Precision::Fp16).with_replicas(2),
        ],
        slo: SloSpec::default(),
        router: RouterPolicy::LeastOutstanding,
        faults: None,
        prefixes: None,
        priority_classes: 1,
    };
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };
    let one = pool(1).install(|| sweep_json(&spec));
    let eight = pool(8).install(|| sweep_json(&spec));
    let default_threads = sweep_json(&spec);
    assert_eq!(one, eight, "1 thread vs 8 threads");
    assert_eq!(one, default_threads, "1 thread vs default threads");
}

/// Sealed pricing is an explicit mode, not only an automatic cutover: a
/// small trace forced onto the sealed path must reproduce the exact
/// path's conservation outcomes (its latencies may differ only by bucket
/// quantization, which round-up makes one-sided).
#[test]
fn forced_sealed_mode_conserves_like_exact_mode() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = Arc::new(models::llama2_13b());
    let spec = TraceSpec::poisson(3, 500, 60.0, 180, 24);
    let exact = simulate(
        &cluster,
        Arc::clone(&model),
        &ServeConfig::new(2).with_pricing(PricingMode::Exact),
        &spec,
    )
    .unwrap();
    let sealed = simulate(
        &cluster,
        Arc::clone(&model),
        &ServeConfig::new(2).with_pricing(PricingMode::Sealed),
        &spec,
    )
    .unwrap();
    assert_eq!(sealed.completed, exact.completed);
    assert_eq!(sealed.generated_tokens, exact.generated_tokens);
    assert!(sealed.makespan >= exact.makespan, "round-up is one-sided");
    assert!(sealed.makespan.secs() <= exact.makespan.secs() * 1.10);
}
