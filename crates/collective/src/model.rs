//! The α–β communication cost model.

use crate::{Algorithm, Collective};
use optimus_hw::LinkSpec;
use optimus_units::{Bytes, Time};
use serde::{Deserialize, Serialize};

/// Communication cost model: algorithm policy plus the Eq. 3/Eq. 4 math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CommModel {
    /// Always use the ring algorithm.
    Ring,
    /// Always use double binary trees.
    Tree,
    /// Pick whichever is faster for each call (NCCL-style autotuning).
    #[default]
    Auto,
}

impl CommModel {
    /// The automatic-selection model.
    #[must_use]
    pub fn auto() -> Self {
        Self::Auto
    }

    /// Predicted time of `collective` over `volume` bytes across `ranks`
    /// participants connected by `link`.
    ///
    /// A group of one rank is free. The per-participant bandwidth is
    /// derated by the link's size-dependent utilization evaluated on the
    /// *per-rank chunk* actually pipelined (`volume / ranks`), which is what
    /// underutilizes the network for inference-sized messages.
    #[must_use]
    pub fn time(
        &self,
        collective: Collective,
        volume: Bytes,
        ranks: usize,
        link: &LinkSpec,
    ) -> Time {
        assert!(ranks > 0, "collective over zero ranks");
        if ranks == 1 || volume.is_zero() {
            return Time::ZERO;
        }
        match self {
            Self::Ring => Self::algorithm_time(Algorithm::Ring, collective, volume, ranks, link),
            Self::Tree => {
                Self::algorithm_time(Algorithm::DoubleBinaryTree, collective, volume, ranks, link)
            }
            Self::Auto => {
                let ring = Self::algorithm_time(Algorithm::Ring, collective, volume, ranks, link);
                let tree = Self::algorithm_time(
                    Algorithm::DoubleBinaryTree,
                    collective,
                    volume,
                    ranks,
                    link,
                );
                ring.min(tree)
            }
        }
    }

    /// The algorithm [`CommModel::Auto`] would choose.
    #[must_use]
    pub fn chosen_algorithm(
        &self,
        collective: Collective,
        volume: Bytes,
        ranks: usize,
        link: &LinkSpec,
    ) -> Algorithm {
        match self {
            Self::Ring => Algorithm::Ring,
            Self::Tree => Algorithm::DoubleBinaryTree,
            Self::Auto => {
                let ring = Self::algorithm_time(Algorithm::Ring, collective, volume, ranks, link);
                let tree = Self::algorithm_time(
                    Algorithm::DoubleBinaryTree,
                    collective,
                    volume,
                    ranks,
                    link,
                );
                if ring <= tree {
                    Algorithm::Ring
                } else {
                    Algorithm::DoubleBinaryTree
                }
            }
        }
    }

    /// Bytes that cross **one participant's** link during the collective —
    /// the quantity energy models charge per rank. A ring all-reduce moves
    /// `2K(N−1)/N` per rank (scatter-reduce + all-gather stages); gather
    /// and scatter halves move `K(N−1)/N`; broadcast and point-to-point
    /// move the buffer once.
    #[must_use]
    pub fn wire_bytes(collective: Collective, volume: Bytes, ranks: usize) -> Bytes {
        if ranks <= 1 {
            return Bytes::ZERO;
        }
        let n = ranks as f64;
        let k = volume.bytes();
        let per_rank = match collective {
            Collective::AllReduce => 2.0 * k * (n - 1.0) / n,
            Collective::AllGather | Collective::ReduceScatter => k * (n - 1.0) / n,
            Collective::Broadcast | Collective::PointToPoint => k,
        };
        Bytes::new(per_rank)
    }

    /// Eq. 3 / Eq. 4 evaluated for one algorithm.
    ///
    /// All-gather and reduce-scatter are each *one stage* of the two-stage
    /// ring all-reduce, so they cost half its bandwidth term and half its
    /// latency term. Broadcast moves the full buffer once along the
    /// pipeline; point-to-point is a single hop.
    #[must_use]
    pub fn algorithm_time(
        algorithm: Algorithm,
        collective: Collective,
        volume: Bytes,
        ranks: usize,
        link: &LinkSpec,
    ) -> Time {
        if ranks <= 1 || volume.is_zero() {
            return Time::ZERO;
        }
        let n = ranks as f64;
        let k = volume.bytes();
        // The paper derives the actual bandwidth by applying a utilization
        // factor to the transferred data volume (§3.4).
        let bw = link.effective_bandwidth(volume).get();
        let l = link.latency.secs();

        let hops = match algorithm {
            Algorithm::Ring => n - 1.0,
            Algorithm::DoubleBinaryTree => n.log2(),
        };

        let (bw_term, lat_term) = match collective {
            Collective::AllReduce => (2.0 * k * (n - 1.0) / (n * bw), 2.0 * l * hops),
            Collective::AllGather | Collective::ReduceScatter => {
                (k * (n - 1.0) / (n * bw), l * hops)
            }
            Collective::Broadcast => (k / bw, l * hops),
            Collective::PointToPoint => (k / link.effective_bandwidth(volume).get(), l),
        };
        Time::new(bw_term + lat_term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::UtilizationCurve;
    use optimus_units::{Bandwidth, Ratio};

    fn ideal_link(gbps: f64, latency_us: f64) -> LinkSpec {
        LinkSpec::new(
            "test",
            Bandwidth::from_gb_per_sec(gbps),
            Time::from_micros(latency_us),
        )
    }

    #[test]
    fn ring_matches_eq3_exactly() {
        // K = 100 MB, N = 8, BW = 100 GB/s, l = 5 us:
        // T = 2·1e8·7/(8·1e11) + 2·5e-6·7 = 1.75e-3 + 7e-5.
        let link = ideal_link(100.0, 5.0);
        let t = CommModel::algorithm_time(
            Algorithm::Ring,
            Collective::AllReduce,
            Bytes::from_mb(100.0),
            8,
            &link,
        );
        assert!((t.secs() - (1.75e-3 + 7.0e-5)).abs() < 1e-9, "{}", t);
    }

    #[test]
    fn tree_matches_eq4_exactly() {
        // Same parameters; latency term becomes 2·l·log2(8) = 2·5e-6·3.
        let link = ideal_link(100.0, 5.0);
        let t = CommModel::algorithm_time(
            Algorithm::DoubleBinaryTree,
            Collective::AllReduce,
            Bytes::from_mb(100.0),
            8,
            &link,
        );
        assert!((t.secs() - (1.75e-3 + 3.0e-5)).abs() < 1e-9, "{}", t);
    }

    #[test]
    fn single_rank_is_free() {
        let link = ideal_link(100.0, 5.0);
        let t = CommModel::auto().time(Collective::AllReduce, Bytes::from_mb(1.0), 1, &link);
        assert_eq!(t, Time::ZERO);
    }

    #[test]
    fn auto_prefers_tree_for_small_messages() {
        // Tiny volume: latency dominates, tree wins for N > 2.
        let link = ideal_link(300.0, 3.0);
        let model = CommModel::auto();
        let algo = model.chosen_algorithm(Collective::AllReduce, Bytes::from_kib(10.0), 8, &link);
        assert_eq!(algo, Algorithm::DoubleBinaryTree);
    }

    #[test]
    fn allgather_is_half_an_allreduce() {
        let link = ideal_link(100.0, 0.0001);
        let v = Bytes::from_mb(64.0);
        let ar = CommModel::algorithm_time(Algorithm::Ring, Collective::AllReduce, v, 8, &link);
        let ag = CommModel::algorithm_time(Algorithm::Ring, Collective::AllGather, v, 8, &link);
        let rs = CommModel::algorithm_time(Algorithm::Ring, Collective::ReduceScatter, v, 8, &link);
        assert!((ar.secs() - (ag.secs() + rs.secs())).abs() < 1e-9);
    }

    #[test]
    fn utilization_penalizes_inference_messages() {
        let derated = ideal_link(300.0, 3.0).with_utilization(UtilizationCurve {
            max: Ratio::new(0.8),
            half_saturation: Bytes::from_mib(4.0),
        });
        let ideal = ideal_link(300.0, 3.0);
        let v = Bytes::from_kib(10.0); // one decode-step all-reduce
        let slow = CommModel::Ring.time(Collective::AllReduce, v, 8, &derated);
        let fast = CommModel::Ring.time(Collective::AllReduce, v, 8, &ideal);
        // The ring latency term (2·l·(N−1)) is common to both; the derated
        // bandwidth term adds tens of microseconds on top.
        assert!(slow.secs() > 1.5 * fast.secs(), "{} vs {}", slow, fast);
    }

    #[test]
    fn p2p_is_volume_over_bandwidth_plus_latency() {
        let link = ideal_link(100.0, 5.0);
        let t = CommModel::algorithm_time(
            Algorithm::Ring,
            Collective::PointToPoint,
            Bytes::from_mb(10.0),
            2,
            &link,
        );
        assert!((t.secs() - (1e7 / 1e11 + 5e-6)).abs() < 1e-12);
    }

    #[test]
    fn ring_cost_independent_of_ranks_for_large_n() {
        // Bandwidth term approaches 2K/BW as N grows (the paper's point
        // that ring cost is independent of processor count).
        let link = ideal_link(100.0, 0.0);
        let v = Bytes::from_mb(100.0);
        let t16 = CommModel::Ring.time(Collective::AllReduce, v, 16, &link);
        let t256 = CommModel::Ring.time(Collective::AllReduce, v, 256, &link);
        let limit = 2.0 * 1e8 / 1e11;
        assert!((t16.secs() - limit).abs() / limit < 0.07);
        assert!((t256.secs() - limit).abs() / limit < 0.005);
        assert!(t256 > t16);
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_rejected() {
        let link = ideal_link(1.0, 1.0);
        let _ = CommModel::auto().time(Collective::AllReduce, Bytes::from_mb(1.0), 0, &link);
    }
}
