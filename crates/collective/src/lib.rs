//! Analytical cost models for collective communication.
//!
//! Implements the communication model of the paper's §3.4: collectives are
//! costed by the α–β forms of the **ring** algorithm (Eq. 3, bandwidth
//! optimal) and the **double-binary-tree** algorithm (Eq. 4, bandwidth and
//! latency optimal):
//!
//! ```text
//! ring:  T = 2K(N−1)/(N·BW) + 2·l·(N−1)
//! tree:  T = 2K(N−1)/(N·BW) + 2·l·log2(N)
//! ```
//!
//! where `K` is the reduced data volume, `N` the group size, `BW` the
//! per-participant link bandwidth (derated by the size-dependent utilization
//! of [`optimus_hw::LinkSpec`]), and `l` the hop latency. Training messages
//! are large, so the latency term is negligible and ring is chosen; decode
//! messages are kilobytes, so the tree's `log2(N)` latency term is what lets
//! inference scale to 8 GPUs (§3.4). [`CommModel::auto`] picks the cheaper
//! of the two, which reproduces exactly this behaviour.
//!
//! ```
//! use optimus_collective::{Collective, CommModel};
//! use optimus_hw::nettech::NvlinkGen;
//! use optimus_units::Bytes;
//!
//! let link = NvlinkGen::Gen3.link();
//! let model = CommModel::auto();
//! // Training-sized all-reduce: tens of MB, bandwidth-dominated.
//! let t = model.time(Collective::AllReduce, Bytes::from_mib(50.0), 8, &link);
//! assert!(t.millis() > 0.1 && t.millis() < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod model;

pub use algorithm::{Algorithm, Collective};
pub use model::CommModel;
