//! Collective kinds and algorithm selection.

use serde::{Deserialize, Serialize};

/// The collective operations used by distributed LLM training and inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Collective {
    /// Reduce a buffer across all ranks, leaving the result on every rank.
    /// Used by tensor-parallel layers (forward and backward) and by
    /// data-parallel gradient synchronization.
    AllReduce,
    /// Gather shards from all ranks onto every rank. Used by sequence
    /// parallelism before entering a tensor-parallel region.
    AllGather,
    /// Reduce a buffer and leave each rank with one shard. Used by sequence
    /// parallelism when leaving a tensor-parallel region.
    ReduceScatter,
    /// One rank sends a buffer to every rank.
    Broadcast,
    /// A single point-to-point transfer (pipeline-stage boundary).
    PointToPoint,
}

impl core::fmt::Display for Collective {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::AllReduce => "all-reduce",
            Self::AllGather => "all-gather",
            Self::ReduceScatter => "reduce-scatter",
            Self::Broadcast => "broadcast",
            Self::PointToPoint => "p2p",
        };
        f.write_str(s)
    }
}

/// The algorithm executing a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Algorithm {
    /// Logical ring (Eq. 3): bandwidth-optimal, latency linear in `N`.
    Ring,
    /// Double binary trees (Eq. 4): bandwidth-optimal with latency
    /// logarithmic in `N` (Sanders et al.; NCCL 2.4).
    DoubleBinaryTree,
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Ring => f.write_str("ring"),
            Self::DoubleBinaryTree => f.write_str("double-binary-tree"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Collective::AllReduce.to_string(), "all-reduce");
        assert_eq!(
            Algorithm::DoubleBinaryTree.to_string(),
            "double-binary-tree"
        );
    }
}
