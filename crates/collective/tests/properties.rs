//! Property-based tests of the collective cost model.

use optimus_collective::{Algorithm, Collective, CommModel};
use optimus_hw::LinkSpec;
use optimus_units::{Bandwidth, Bytes, Time};
use proptest::prelude::*;

fn link(gbps: f64, lat_us: f64) -> LinkSpec {
    LinkSpec::new(
        "p",
        Bandwidth::from_gb_per_sec(gbps),
        Time::from_micros(lat_us),
    )
}

proptest! {
    /// Collective time grows with volume.
    #[test]
    fn monotone_in_volume(v in 1.0f64..1e9, ranks in 2usize..64) {
        let l = link(100.0, 3.0);
        let model = CommModel::auto();
        let t1 = model.time(Collective::AllReduce, Bytes::new(v), ranks, &l);
        let t2 = model.time(Collective::AllReduce, Bytes::new(v * 2.0), ranks, &l);
        prop_assert!(t2 >= t1);
    }

    /// More bandwidth never hurts.
    #[test]
    fn monotone_in_bandwidth(v in 1e3f64..1e9, ranks in 2usize..64, bw in 1.0f64..400.0) {
        let slow = link(bw, 3.0);
        let fast = link(bw * 2.0, 3.0);
        let model = CommModel::auto();
        let ts = model.time(Collective::AllReduce, Bytes::new(v), ranks, &slow);
        let tf = model.time(Collective::AllReduce, Bytes::new(v), ranks, &fast);
        prop_assert!(tf <= ts);
    }

    /// Auto never loses to either fixed algorithm.
    #[test]
    fn auto_is_optimal(v in 1.0f64..1e9, ranks in 2usize..128) {
        let l = link(300.0, 3.0);
        let vol = Bytes::new(v);
        let auto = CommModel::Auto.time(Collective::AllReduce, vol, ranks, &l);
        let ring = CommModel::Ring.time(Collective::AllReduce, vol, ranks, &l);
        let tree = CommModel::Tree.time(Collective::AllReduce, vol, ranks, &l);
        prop_assert!(auto <= ring && auto <= tree);
        prop_assert!(auto == ring.min(tree));
    }

    /// Ring all-reduce decomposes exactly into reduce-scatter + all-gather.
    #[test]
    fn ring_decomposition(v in 1.0f64..1e9, ranks in 2usize..128) {
        let l = link(100.0, 2.0);
        let vol = Bytes::new(v);
        let ar = CommModel::algorithm_time(Algorithm::Ring, Collective::AllReduce, vol, ranks, &l);
        let rs = CommModel::algorithm_time(Algorithm::Ring, Collective::ReduceScatter, vol, ranks, &l);
        let ag = CommModel::algorithm_time(Algorithm::Ring, Collective::AllGather, vol, ranks, &l);
        prop_assert!((ar.secs() - rs.secs() - ag.secs()).abs() < 1e-12 * ar.secs().max(1e-9));
    }

    /// Tree latency advantage grows with rank count; bandwidth terms match.
    #[test]
    fn tree_beats_ring_on_latency(ranks_exp in 2u32..8) {
        let ranks = 1usize << ranks_exp;
        let l = link(100.0, 5.0);
        let tiny = Bytes::new(64.0);
        let ring = CommModel::algorithm_time(Algorithm::Ring, Collective::AllReduce, tiny, ranks, &l);
        let tree = CommModel::algorithm_time(Algorithm::DoubleBinaryTree, Collective::AllReduce, tiny, ranks, &l);
        prop_assert!(tree < ring, "tree must win for tiny messages at {ranks} ranks");
    }

    /// Wire bytes per rank are bounded by twice the logical volume.
    #[test]
    fn wire_bytes_bounded(v in 1.0f64..1e9, ranks in 2usize..256) {
        let w = CommModel::wire_bytes(Collective::AllReduce, Bytes::new(v), ranks);
        prop_assert!(w.bytes() <= 2.0 * v);
        prop_assert!(w.bytes() >= v * 0.5, "at least half the buffer moves");
    }

    /// Broadcast costs no more than an all-reduce of the same volume.
    #[test]
    fn broadcast_cheaper_than_allreduce(v in 1e3f64..1e9, ranks in 2usize..64) {
        let l = link(100.0, 3.0);
        let vol = Bytes::new(v);
        let bc = CommModel::algorithm_time(Algorithm::Ring, Collective::Broadcast, vol, ranks, &l);
        let ar = CommModel::algorithm_time(Algorithm::Ring, Collective::AllReduce, vol, ranks, &l);
        prop_assert!(bc <= ar);
    }
}
