//! Property-based tests of the quantity arithmetic.

use optimus_units::{Bandwidth, Bytes, FlopCount, FlopThroughput, Power, Ratio, Time};
use proptest::prelude::*;

fn finite_pos() -> impl Strategy<Value = f64> {
    (1e-6f64..1e18).prop_map(|x| x)
}

proptest! {
    /// Addition is commutative and associative within float tolerance.
    #[test]
    fn addition_commutes(a in finite_pos(), b in finite_pos()) {
        let x = Time::from_secs(a) + Time::from_secs(b);
        let y = Time::from_secs(b) + Time::from_secs(a);
        prop_assert_eq!(x, y);
    }

    /// Subtraction saturates at zero instead of going negative.
    #[test]
    fn subtraction_saturates(a in finite_pos(), b in finite_pos()) {
        let d = Bytes::new(a) - Bytes::new(b);
        prop_assert!(d.bytes() >= 0.0);
        if a > b {
            prop_assert!((d.bytes() - (a - b)).abs() <= 1e-9 * a.max(1.0));
        } else {
            prop_assert_eq!(d.bytes(), 0.0);
        }
    }

    /// volume / bandwidth · bandwidth ≈ volume.
    #[test]
    fn transfer_roundtrip(vol in finite_pos(), bw in finite_pos()) {
        let t = Bytes::new(vol) / Bandwidth::new(bw);
        let back = Bandwidth::new(bw) * t;
        prop_assert!((back.bytes() - vol).abs() / vol < 1e-12);
    }

    /// work / rate · rate ≈ work.
    #[test]
    fn flop_roundtrip(work in finite_pos(), rate in finite_pos()) {
        let t = FlopCount::new(work) / FlopThroughput::new(rate);
        let back = FlopThroughput::new(rate) * t;
        prop_assert!((back.get() - work).abs() / work < 1e-12);
    }

    /// Energy = power × time is monotone in both factors.
    #[test]
    fn energy_monotone(p in 1.0f64..1e4, t in 1.0f64..1e6) {
        let e = Power::from_watts(p) * Time::from_secs(t);
        let e_more_power = Power::from_watts(p * 2.0) * Time::from_secs(t);
        let e_more_time = Power::from_watts(p) * Time::from_secs(t * 2.0);
        prop_assert!(e_more_power > e);
        prop_assert!(e_more_time > e);
    }

    /// Like-quantity division is the scalar ratio.
    #[test]
    fn self_division(a in finite_pos(), b in finite_pos()) {
        let r = Time::from_secs(a) / Time::from_secs(b);
        prop_assert!((r - a / b).abs() / (a / b) < 1e-12);
    }

    /// Ratio::saturating always lands in [0, 1] and is idempotent.
    #[test]
    fn ratio_saturating(x in -1e3f64..1e3) {
        let r = Ratio::saturating(x);
        prop_assert!((0.0..=1.0).contains(&r.get()));
        prop_assert_eq!(Ratio::saturating(r.get()), r);
    }

    /// complement is an involution.
    #[test]
    fn ratio_complement_involution(x in 0.0f64..=1.0) {
        let r = Ratio::new(x);
        prop_assert!((r.complement().complement().get() - x).abs() < 1e-15);
    }

    /// Sum over an iterator equals the fold.
    #[test]
    fn sum_matches_fold(values in proptest::collection::vec(1.0f64..1e9, 1..20)) {
        let total: Bytes = values.iter().map(|&v| Bytes::new(v)).sum();
        let expected: f64 = values.iter().sum();
        prop_assert!((total.bytes() - expected).abs() / expected < 1e-12);
    }

    /// min/max are consistent with ordering.
    #[test]
    fn minmax_consistent(a in finite_pos(), b in finite_pos()) {
        let (x, y) = (Time::from_secs(a), Time::from_secs(b));
        prop_assert!(x.min(y) <= x.max(y));
        prop_assert!(x.min(y) == x || x.min(y) == y);
    }
}
