//! Wall-clock durations.

use crate::scalar::quantity;

quantity!(
    /// A duration in seconds.
    ///
    /// The fundamental output of every estimator in the suite: kernel times,
    /// collective times, iteration times, end-to-end latencies.
    Time,
    "seconds"
);

impl Time {
    /// Creates a duration from seconds. Alias of [`Time::new`].
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Self::new(secs)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// The duration in seconds.
    #[must_use]
    pub const fn secs(self) -> f64 {
        self.get()
    }

    /// The duration in milliseconds.
    #[must_use]
    pub fn millis(self) -> f64 {
        self.get() * 1e3
    }

    /// The duration in microseconds.
    #[must_use]
    pub fn micros(self) -> f64 {
        self.get() * 1e6
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.get(),
            &[
                (3600.0, "h"),
                (60.0, "min"),
                (1.0, "s"),
                (1e-3, "ms"),
                (1e-6, "us"),
                (1e-9, "ns"),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert!((Time::from_millis(1.5).secs() - 0.0015).abs() < 1e-15);
        assert!((Time::from_micros(82.0).millis() - 0.082).abs() < 1e-12);
        assert!((Time::from_nanos(500.0).micros() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_secs(18.1).to_string(), "18.1 s");
        assert_eq!(Time::from_millis(4.735).to_string(), "4.735 ms");
        assert_eq!(Time::from_secs(7200.0).to_string(), "2.000 h");
    }
}
