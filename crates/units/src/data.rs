//! Data volumes.

use crate::scalar::quantity;
use crate::{Bandwidth, Time};

quantity!(
    /// A data volume in bytes.
    ///
    /// Backed by `f64` because the models routinely produce *average* or
    /// *per-element* volumes (e.g. half a byte per FP4 weight) that are not
    /// integral.
    Bytes,
    "bytes"
);

impl Bytes {
    /// Creates a volume from kibibytes (2^10 bytes).
    #[must_use]
    pub fn from_kib(kib: f64) -> Self {
        Self::new(kib * 1024.0)
    }

    /// Creates a volume from mebibytes (2^20 bytes).
    #[must_use]
    pub fn from_mib(mib: f64) -> Self {
        Self::new(mib * 1024.0 * 1024.0)
    }

    /// Creates a volume from gibibytes (2^30 bytes).
    #[must_use]
    pub fn from_gib(gib: f64) -> Self {
        Self::new(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Creates a volume from decimal gigabytes (10^9 bytes), the unit
    /// vendors quote DRAM capacities and message sizes in.
    #[must_use]
    pub fn from_gb(gb: f64) -> Self {
        Self::new(gb * 1e9)
    }

    /// Creates a volume from decimal megabytes (10^6 bytes).
    #[must_use]
    pub fn from_mb(mb: f64) -> Self {
        Self::new(mb * 1e6)
    }

    /// The volume in bytes.
    #[must_use]
    pub const fn bytes(self) -> f64 {
        self.get()
    }

    /// The volume in gibibytes.
    #[must_use]
    pub fn gib(self) -> f64 {
        self.get() / (1024.0 * 1024.0 * 1024.0)
    }

    /// The volume in decimal gigabytes.
    #[must_use]
    pub fn gb(self) -> f64 {
        self.get() / 1e9
    }

    /// The volume in mebibytes.
    #[must_use]
    pub fn mib(self) -> f64 {
        self.get() / (1024.0 * 1024.0)
    }
}

impl core::ops::Div<Bandwidth> for Bytes {
    type Output = Time;
    /// Transfer time of this volume at the given bandwidth.
    fn div(self, rhs: Bandwidth) -> Time {
        Time::new(self.get() / rhs.get())
    }
}

impl core::fmt::Display for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.get(),
            &[
                (1024f64.powi(4), "TiB"),
                (1024f64.powi(3), "GiB"),
                (1024f64.powi(2), "MiB"),
                (1024.0, "KiB"),
                (1.0, "B"),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from_kib(1.0).bytes(), 1024.0);
        assert_eq!(Bytes::from_gib(80.0).gib(), 80.0);
        assert_eq!(Bytes::from_gb(1.0).bytes(), 1e9);
        assert!((Bytes::from_mib(512.0).gib() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time() {
        let t = Bytes::from_gb(26.0) / Bandwidth::from_gb_per_sec(1300.0);
        assert!((t.secs() - 0.02).abs() < 1e-12);
    }
}
