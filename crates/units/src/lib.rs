//! Strongly-typed physical quantities for the Optimus performance-modeling suite.
//!
//! Analytical performance models juggle many `f64`s that mean very different
//! things: seconds, bytes, FLOP counts, bandwidths, areas, powers. Mixing them
//! up silently produces plausible-looking nonsense, so this crate wraps each
//! quantity in a newtype ([C-NEWTYPE]) with only the physically meaningful
//! arithmetic defined between them:
//!
//! ```
//! use optimus_units::{Bytes, Bandwidth, FlopCount, FlopThroughput, Time};
//!
//! let volume = Bytes::from_gib(2.0);
//! let bw = Bandwidth::from_gb_per_sec(2_000.0); // 2 TB/s HBM
//! let t: Time = volume / bw;
//! assert!(t.secs() > 0.001 && t.secs() < 0.0011);
//!
//! let work = FlopCount::from_tera(312.0);
//! let peak = FlopThroughput::from_tera(312.0); // A100 FP16 peak
//! assert!((work / peak).secs() - 1.0 < 1e-12);
//! ```
//!
//! All quantities are backed by `f64`, are `Copy`, order totally (`NaN` is
//! rejected at construction), implement [`serde::Serialize`]/`Deserialize`,
//! and display with automatically scaled SI units.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod data;
mod flops;
mod physical;
mod ratio;
mod scalar;
mod time;

pub use bandwidth::Bandwidth;
pub use data::Bytes;
pub use flops::{FlopCount, FlopThroughput};
pub use physical::{Area, Energy, Frequency, Power};
pub use ratio::Ratio;
pub use time::Time;

/// Formats a raw value with an SI prefix chosen from `units`, which lists
/// `(scale, suffix)` pairs in descending scale order.
///
/// Shared by the `Display` impls of every quantity in this crate.
pub(crate) fn format_scaled(
    f: &mut core::fmt::Formatter<'_>,
    value: f64,
    units: &[(f64, &str)],
) -> core::fmt::Result {
    debug_assert!(!units.is_empty());
    for &(scale, suffix) in units {
        if value >= scale || (scale, suffix) == *units.last().expect("non-empty") {
            let scaled = value / scale;
            if scaled >= 100.0 {
                return write!(f, "{scaled:.0} {suffix}");
            } else if scaled >= 10.0 {
                return write!(f, "{scaled:.1} {suffix}");
            }
            return write!(f, "{scaled:.3} {suffix}");
        }
    }
    unreachable!("last unit always matches");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_over_bandwidth_is_time() {
        let t = Bytes::from_gb(4.0) / Bandwidth::from_gb_per_sec(2.0);
        assert!((t.secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flops_over_throughput_is_time() {
        let t = FlopCount::from_giga(10.0) / FlopThroughput::from_giga(5.0);
        assert!((t.secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = Power::from_watts(250.0) * Time::from_secs(4.0);
        assert!((e.joules() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Bytes::from_gib(80.0).to_string(), "80.0 GiB");
        assert_eq!(Time::from_micros(82.0).to_string(), "82.0 us");
        assert_eq!(Bandwidth::from_gb_per_sec(3350.0).to_string(), "3.350 TB/s");
    }
}
