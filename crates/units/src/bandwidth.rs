//! Data transfer rates.

use crate::scalar::quantity;
use crate::{Bytes, Time};

quantity!(
    /// A data transfer rate in bytes per second.
    ///
    /// Used for every level of the memory hierarchy (register/shared/L2/DRAM)
    /// as well as intra-node (NVLink) and inter-node (InfiniBand) links.
    Bandwidth,
    "bytes per second"
);

impl Bandwidth {
    /// Creates a rate from GB/s (10^9 bytes per second), the unit used by
    /// both DRAM and network datasheets.
    #[must_use]
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Self::new(gbps * 1e9)
    }

    /// Creates a rate from TB/s.
    #[must_use]
    pub fn from_tb_per_sec(tbps: f64) -> Self {
        Self::new(tbps * 1e12)
    }

    /// The rate in GB/s.
    #[must_use]
    pub fn gb_per_sec(self) -> f64 {
        self.get() / 1e9
    }

    /// The rate in TB/s.
    #[must_use]
    pub fn tb_per_sec(self) -> f64 {
        self.get() / 1e12
    }
}

impl core::ops::Mul<Time> for Bandwidth {
    type Output = Bytes;
    fn mul(self, rhs: Time) -> Bytes {
        Bytes::new(self.get() * rhs.secs())
    }
}

impl core::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.get(),
            &[(1e12, "TB/s"), (1e9, "GB/s"), (1e6, "MB/s"), (1.0, "B/s")],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Bandwidth::from_tb_per_sec(3.35).gb_per_sec(), 3350.0);
        assert_eq!(Bandwidth::from_gb_per_sec(200.0).tb_per_sec(), 0.2);
    }

    #[test]
    fn volume_moved() {
        let v = Bandwidth::from_gb_per_sec(100.0) * Time::from_secs(2.0);
        assert_eq!(v.gb(), 200.0);
    }
}
