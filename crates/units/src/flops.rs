//! Floating-point operation counts and rates.

use crate::scalar::quantity;
use crate::Time;

quantity!(
    /// A count of floating-point operations.
    ///
    /// A fused multiply-add counts as **two** operations, matching vendor
    /// peak-throughput accounting (a GEMM of shape `m x n x k` performs
    /// `2 m n k` FLOPs).
    FlopCount,
    "floating-point operations"
);

quantity!(
    /// A floating-point operation rate in FLOP/s.
    FlopThroughput,
    "FLOP/s"
);

impl FlopCount {
    /// Creates a count from gigaFLOPs (10^9).
    #[must_use]
    pub fn from_giga(g: f64) -> Self {
        Self::new(g * 1e9)
    }

    /// Creates a count from teraFLOPs (10^12).
    #[must_use]
    pub fn from_tera(t: f64) -> Self {
        Self::new(t * 1e12)
    }

    /// The count in teraFLOPs.
    #[must_use]
    pub fn tera(self) -> f64 {
        self.get() / 1e12
    }
}

impl FlopThroughput {
    /// Creates a rate from GFLOP/s.
    #[must_use]
    pub fn from_giga(g: f64) -> Self {
        Self::new(g * 1e9)
    }

    /// Creates a rate from TFLOP/s (the unit GPU datasheets use).
    #[must_use]
    pub fn from_tera(t: f64) -> Self {
        Self::new(t * 1e12)
    }

    /// Creates a rate from PFLOP/s.
    #[must_use]
    pub fn from_peta(p: f64) -> Self {
        Self::new(p * 1e15)
    }

    /// The rate in TFLOP/s.
    #[must_use]
    pub fn tera(self) -> f64 {
        self.get() / 1e12
    }
}

impl core::ops::Div<FlopThroughput> for FlopCount {
    type Output = Time;
    /// Ideal execution time of this much work at the given rate.
    fn div(self, rhs: FlopThroughput) -> Time {
        Time::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Time> for FlopThroughput {
    type Output = FlopCount;
    fn mul(self, rhs: Time) -> FlopCount {
        FlopCount::new(self.get() * rhs.secs())
    }
}

impl core::fmt::Display for FlopCount {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.get(),
            &[
                (1e18, "EFLOP"),
                (1e15, "PFLOP"),
                (1e12, "TFLOP"),
                (1e9, "GFLOP"),
                (1e6, "MFLOP"),
                (1.0, "FLOP"),
            ],
        )
    }
}

impl core::fmt::Display for FlopThroughput {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.get(),
            &[
                (1e18, "EFLOP/s"),
                (1e15, "PFLOP/s"),
                (1e12, "TFLOP/s"),
                (1e9, "GFLOP/s"),
                (1.0, "FLOP/s"),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_time() {
        // 312 TFLOP of work at A100 FP16 peak takes exactly one second.
        let t = FlopCount::from_tera(312.0) / FlopThroughput::from_tera(312.0);
        assert!((t.secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_times_time_is_work() {
        let w = FlopThroughput::from_tera(2.0) * Time::from_secs(3.0);
        assert!((w.tera() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(FlopThroughput::from_tera(989.4).to_string(), "989 TFLOP/s");
        assert_eq!(FlopCount::from_giga(31.5).to_string(), "31.5 GFLOP");
    }
}
