//! Macro generating the shared newtype boilerplate for `f64`-backed quantities.

/// Implements constructors, accessors, arithmetic within the same quantity,
/// scalar multiplication/division, ordering, and serde for an `f64` newtype.
///
/// Every generated quantity rejects NaN and negative values at construction:
/// physical quantities in this model (durations, volumes, rates) are
/// non-negative by definition, and refusing NaN keeps `PartialOrd` total in
/// practice.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit_doc:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates a new value measured in ", $unit_doc, ".")]
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN or negative; quantities in this crate
            /// are non-negative by construction.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(
                    value.is_finite() || value == f64::INFINITY,
                    concat!(stringify!($name), " must not be NaN")
                );
                assert!(
                    value >= 0.0,
                    concat!(stringify!($name), " must be non-negative, got {}"),
                    value
                );
                Self(value)
            }

            #[doc = concat!("Returns the raw value in ", $unit_doc, ".")]
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            /// Saturating at zero: these quantities cannot go negative.
            fn sub(self, rhs: Self) -> Self {
                Self((self.0 - rhs.0).max(0.0))
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self::new(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name::new(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self::new(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            /// Dividing two like quantities yields a dimensionless ratio.
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + *b)
            }
        }

        impl Eq for $name {}

        #[allow(clippy::derive_ord_xor_partial_ord)]
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.partial_cmp(other)
                    .expect("NaN is rejected at construction")
            }
        }
    };
}

pub(crate) use quantity;

#[cfg(test)]
mod tests {
    quantity!(
        /// Test quantity.
        Widgets,
        "widgets"
    );

    #[test]
    fn arithmetic_works() {
        let a = Widgets::new(3.0);
        let b = Widgets::new(1.5);
        assert_eq!((a + b).get(), 4.5);
        assert_eq!((a - b).get(), 1.5);
        assert_eq!((b - a).get(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.0).get(), 6.0);
        assert_eq!((a / 2.0).get(), 1.5);
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Widgets::new(1.0);
        let b = Widgets::new(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sum_works() {
        let total: Widgets = (1..=4).map(|i| Widgets::new(i as f64)).sum();
        assert_eq!(total.get(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Widgets::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Widgets::new(f64::NAN);
    }
}
