//! Silicon-level quantities used by the micro-architecture engine.

use crate::scalar::quantity;
use crate::Time;

quantity!(
    /// Silicon area in square millimeters.
    Area,
    "square millimeters"
);

quantity!(
    /// Power in watts.
    Power,
    "watts"
);

quantity!(
    /// Energy in joules.
    Energy,
    "joules"
);

quantity!(
    /// Clock frequency in hertz.
    Frequency,
    "hertz"
);

impl Area {
    /// Creates an area from mm². Alias of [`Area::new`].
    #[must_use]
    pub fn from_mm2(mm2: f64) -> Self {
        Self::new(mm2)
    }

    /// The area in mm².
    #[must_use]
    pub const fn mm2(self) -> f64 {
        self.get()
    }
}

impl Power {
    /// Creates a power from watts. Alias of [`Power::new`].
    #[must_use]
    pub fn from_watts(w: f64) -> Self {
        Self::new(w)
    }

    /// The power in watts.
    #[must_use]
    pub const fn watts(self) -> f64 {
        self.get()
    }
}

impl Energy {
    /// Creates an energy from joules. Alias of [`Energy::new`].
    #[must_use]
    pub fn from_joules(j: f64) -> Self {
        Self::new(j)
    }

    /// The energy in joules.
    #[must_use]
    pub const fn joules(self) -> f64 {
        self.get()
    }
}

impl Frequency {
    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// The frequency in GHz.
    #[must_use]
    pub fn ghz(self) -> f64 {
        self.get() / 1e9
    }
}

impl core::ops::Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::new(self.watts() * rhs.secs())
    }
}

impl core::ops::Div<Power> for Energy {
    type Output = Time;
    fn div(self, rhs: Power) -> Time {
        Time::new(self.joules() / rhs.watts())
    }
}

impl core::fmt::Display for Area {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} mm^2", self.mm2())
    }
}

impl core::fmt::Display for Power {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(f, self.watts(), &[(1e3, "kW"), (1.0, "W"), (1e-3, "mW")])
    }
}

impl core::fmt::Display for Energy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.joules(),
            &[(1e6, "MJ"), (1e3, "kJ"), (1.0, "J"), (1e-3, "mJ")],
        )
    }
}

impl core::fmt::Display for Frequency {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        crate::format_scaled(
            f,
            self.get(),
            &[(1e9, "GHz"), (1e6, "MHz"), (1e3, "kHz"), (1.0, "Hz")],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_energy_roundtrip() {
        let e = Power::from_watts(400.0) * Time::from_secs(10.0);
        assert_eq!(e.joules(), 4000.0);
        let t = e / Power::from_watts(400.0);
        assert!((t.secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::from_ghz(1.41).to_string(), "1.410 GHz");
    }
}
