//! Dimensionless ratios constrained to `[0, 1]`.

use serde::{Deserialize, Serialize};

/// A dimensionless fraction in `[0, 1]`.
///
/// Used for utilization/efficiency factors (DRAM bandwidth utilization of a
/// GEMV, achievable fraction of peak FLOPs, network utilization of a small
/// all-reduce) and for resource-allocation fractions in the DSE search space.
///
/// ```
/// use optimus_units::Ratio;
/// let eff = Ratio::new(0.85);
/// assert_eq!(eff.get(), 0.85);
/// assert_eq!((eff * Ratio::HALF).get(), 0.425);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The ratio 0.
    pub const ZERO: Self = Self(0.0);
    /// The ratio 0.5.
    pub const HALF: Self = Self(0.5);
    /// The ratio 1 (no derating).
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "Ratio must lie in [0, 1], got {value}"
        );
        Self(value)
    }

    /// Creates a ratio, clamping `value` into `[0, 1]` (NaN becomes 0).
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// The raw fraction.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The complementary fraction `1 - self`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// The value as a percentage in `[0, 100]`.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }
}

impl Default for Ratio {
    /// Defaults to [`Ratio::ONE`] (no derating).
    fn default() -> Self {
        Self::ONE
    }
}

impl Eq for Ratio {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.partial_cmp(other)
            .expect("NaN rejected at construction")
    }
}

impl core::ops::Mul for Ratio {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl core::ops::Mul<Ratio> for f64 {
    type Output = f64;
    fn mul(self, rhs: Ratio) -> f64 {
        self * rhs.0
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_clamps() {
        assert_eq!(Ratio::saturating(1.5), Ratio::ONE);
        assert_eq!(Ratio::saturating(-0.5), Ratio::ZERO);
        assert_eq!(Ratio::saturating(f64::NAN), Ratio::ZERO);
    }

    #[test]
    fn complement() {
        assert!((Ratio::new(0.3).complement().get() - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn out_of_range_rejected() {
        let _ = Ratio::new(1.01);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(0.854).to_string(), "85.4%");
    }
}
