//! Whole-accelerator description.

use crate::{ComputeSpec, DeviceCalibration, HwError, MemoryLevel, MemoryLevelKind, Precision};
use optimus_units::{Bandwidth, Bytes, FlopThroughput};
use serde::{Deserialize, Serialize};

/// The high-level performance description of one accelerator (GPU, TPU, or a
/// hypothetical design synthesized by the µArch engine).
///
/// This is the paper's *architecture abstraction layer*: only the quantities
/// that drive the roofline model are retained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Human-readable name, e.g. `"A100-SXM-80GB"`.
    pub name: String,
    /// Peak arithmetic throughput per precision.
    pub compute: ComputeSpec,
    /// On-chip cache levels ordered **inner to outer** (shared/L1 first,
    /// then L2). DRAM is stored separately in [`Accelerator::dram`].
    pub on_chip: Vec<MemoryLevel>,
    /// Off-chip device memory.
    pub dram: MemoryLevel,
    /// Empirical derating constants.
    pub calibration: DeviceCalibration,
}

impl Accelerator {
    /// Creates an accelerator description.
    ///
    /// # Panics
    ///
    /// Panics if `on_chip` contains a [`MemoryLevelKind::Dram`] level or if
    /// the levels are not ordered inner to outer.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        compute: ComputeSpec,
        on_chip: Vec<MemoryLevel>,
        dram: MemoryLevel,
    ) -> Self {
        assert!(
            on_chip.iter().all(|l| l.kind != MemoryLevelKind::Dram),
            "DRAM belongs in the `dram` field, not `on_chip`"
        );
        assert!(
            on_chip.windows(2).all(|w| w[0].kind <= w[1].kind),
            "on-chip levels must be ordered inner to outer"
        );
        Self {
            name: name.into(),
            compute,
            on_chip,
            dram,
            calibration: DeviceCalibration::default(),
        }
    }

    /// Sets the calibration constants.
    #[must_use]
    pub fn with_calibration(mut self, calibration: DeviceCalibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Peak throughput at `precision`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedPrecision`] if the device lacks the
    /// precision.
    pub fn peak(&self, precision: Precision) -> Result<FlopThroughput, HwError> {
        self.compute.peak_or_err(precision, &self.name)
    }

    /// The full hierarchy walked by the roofline model, ordered inner to
    /// outer and ending with DRAM.
    pub fn hierarchy(&self) -> impl Iterator<Item = &MemoryLevel> {
        self.on_chip.iter().chain(core::iter::once(&self.dram))
    }

    /// The level of `kind`, if present.
    #[must_use]
    pub fn level(&self, kind: MemoryLevelKind) -> Option<&MemoryLevel> {
        self.hierarchy().find(|l| l.kind == kind)
    }

    /// Replaces the DRAM technology (bandwidth and capacity), keeping
    /// everything else — the paper's memory-technology-scaling case studies
    /// (Figs. 6 and 9) do exactly this.
    #[must_use]
    pub fn with_dram(mut self, capacity: Bytes, bandwidth: Bandwidth) -> Self {
        self.dram = MemoryLevel::dram(capacity, bandwidth);
        self
    }

    /// Returns a renamed copy.
    #[must_use]
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl core::fmt::Display for Accelerator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: ", self.name)?;
        if let Some(p) = self.compute.peak(Precision::Fp16) {
            write!(f, "{p} FP16, ")?;
        }
        write!(f, "{}", self.dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_units::{Bandwidth, Bytes};

    fn toy() -> Accelerator {
        Accelerator::new(
            "toy",
            ComputeSpec::new([(Precision::Fp16, FlopThroughput::from_tera(100.0))]),
            vec![
                MemoryLevel::shared_l1(Bytes::from_mib(16.0), Bandwidth::from_tb_per_sec(20.0)),
                MemoryLevel::l2(Bytes::from_mib(40.0), Bandwidth::from_tb_per_sec(5.0)),
            ],
            MemoryLevel::dram(Bytes::from_gb(80.0), Bandwidth::from_tb_per_sec(2.0)),
        )
    }

    #[test]
    fn hierarchy_walk_ends_at_dram() {
        let acc = toy();
        let kinds: Vec<_> = acc.hierarchy().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                MemoryLevelKind::SharedL1,
                MemoryLevelKind::L2,
                MemoryLevelKind::Dram
            ]
        );
    }

    #[test]
    fn unsupported_precision_is_error() {
        let err = toy().peak(Precision::Fp4).unwrap_err();
        assert!(matches!(err, HwError::UnsupportedPrecision { .. }));
    }

    #[test]
    fn with_dram_swaps_technology() {
        let acc = toy().with_dram(Bytes::from_gb(141.0), Bandwidth::from_tb_per_sec(4.8));
        assert_eq!(acc.dram.bandwidth.tb_per_sec(), 4.8);
        assert_eq!(acc.dram.capacity.gb(), 141.0);
        assert_eq!(acc.on_chip.len(), 2, "on-chip levels untouched");
    }

    #[test]
    #[should_panic(expected = "ordered inner to outer")]
    fn misordered_levels_rejected() {
        let _ = Accelerator::new(
            "bad",
            ComputeSpec::new([]),
            vec![
                MemoryLevel::l2(Bytes::from_mib(40.0), Bandwidth::from_tb_per_sec(5.0)),
                MemoryLevel::shared_l1(Bytes::from_mib(16.0), Bandwidth::from_tb_per_sec(20.0)),
            ],
            MemoryLevel::dram(Bytes::from_gb(80.0), Bandwidth::from_tb_per_sec(2.0)),
        );
    }
}
