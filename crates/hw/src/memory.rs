//! Memory-hierarchy levels.

use optimus_units::{Bandwidth, Bytes};
use serde::{Deserialize, Serialize};

/// The position of a memory level in the hierarchy, ordered from the level
/// closest to the arithmetic units outward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MemoryLevelKind {
    /// Register file (rarely the binding level; included for completeness).
    Register,
    /// Per-SM shared memory / L1 cache.
    SharedL1,
    /// Chip-wide L2 / last-level cache.
    L2,
    /// Off-chip device memory (HBM/GDDR DRAM).
    Dram,
}

impl core::fmt::Display for MemoryLevelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Register => "registers",
            Self::SharedL1 => "shared/L1",
            Self::L2 => "L2",
            Self::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// One level of the memory hierarchy: an aggregate capacity and the aggregate
/// bandwidth at which the level can feed the next level inward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevel {
    /// Which level this is.
    pub kind: MemoryLevelKind,
    /// Total capacity of the level (aggregated over all SMs for on-chip
    /// levels; the full device memory for DRAM).
    pub capacity: Bytes,
    /// Aggregate sustained bandwidth of the level.
    pub bandwidth: Bandwidth,
}

impl MemoryLevel {
    /// Creates a level description.
    #[must_use]
    pub fn new(kind: MemoryLevelKind, capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self {
            kind,
            capacity,
            bandwidth,
        }
    }

    /// Convenience constructor for a DRAM level.
    #[must_use]
    pub fn dram(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(MemoryLevelKind::Dram, capacity, bandwidth)
    }

    /// Convenience constructor for an L2 level.
    #[must_use]
    pub fn l2(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(MemoryLevelKind::L2, capacity, bandwidth)
    }

    /// Convenience constructor for a shared-memory/L1 level.
    #[must_use]
    pub fn shared_l1(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(MemoryLevelKind::SharedL1, capacity, bandwidth)
    }
}

impl core::fmt::Display for MemoryLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} ({}, {})", self.kind, self.capacity, self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_order_inner_to_outer() {
        assert!(MemoryLevelKind::Register < MemoryLevelKind::SharedL1);
        assert!(MemoryLevelKind::SharedL1 < MemoryLevelKind::L2);
        assert!(MemoryLevelKind::L2 < MemoryLevelKind::Dram);
    }

    #[test]
    fn display_is_informative() {
        let l = MemoryLevel::l2(Bytes::from_mib(40.0), Bandwidth::from_tb_per_sec(4.8));
        let s = l.to_string();
        assert!(s.contains("L2") && s.contains("40.0 MiB"));
    }
}
