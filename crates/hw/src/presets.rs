//! Datasheet presets for the accelerators and clusters studied in the paper.
//!
//! Compute throughputs are **dense** (non-sparse) tensor-core ratings; DRAM
//! bandwidths are the product figures the paper quotes (e.g. A100-80GB at
//! ~1.9 TB/s HBM2e, H100-SXM at 3.35 TB/s HBM3). On-chip capacities and
//! bandwidths come from vendor architecture whitepapers and published
//! microbenchmark studies; they only need to be right to first order since
//! LLM kernels bind on DRAM or compute in almost all regimes the paper
//! examines (the L2-bound inference regime of Fig. 9 appears only beyond
//! HBM3e, which the presets reproduce).

use crate::nettech::{self, NvlinkGen};
use crate::{
    Accelerator, ClusterSpec, ComputeSpec, DeviceCalibration, LinkSpec, MemoryLevel, NodeSpec,
    Precision,
};
use optimus_units::{Bandwidth, Bytes, FlopThroughput};

/// NVIDIA A100 SXM4 80 GB (Ampere, N7-class node).
///
/// 312 TFLOP/s dense FP16/BF16, 1.935 TB/s HBM2e, 40 MiB L2.
#[must_use]
pub fn a100_sxm_80gb() -> Accelerator {
    Accelerator::new(
        "A100-SXM-80GB",
        ComputeSpec::new([
            (Precision::Fp64, FlopThroughput::from_tera(9.7)),
            (Precision::Fp32, FlopThroughput::from_tera(19.5)),
            (Precision::Tf32, FlopThroughput::from_tera(156.0)),
            (Precision::Fp16, FlopThroughput::from_tera(312.0)),
            (Precision::Bf16, FlopThroughput::from_tera(312.0)),
            (Precision::Int8, FlopThroughput::from_tera(624.0)),
        ]),
        vec![
            MemoryLevel::shared_l1(Bytes::from_mib(17.3), Bandwidth::from_tb_per_sec(19.5)),
            MemoryLevel::l2(Bytes::from_mib(40.0), Bandwidth::from_tb_per_sec(4.8)),
        ],
        MemoryLevel::dram(Bytes::from_gb(80.0), Bandwidth::from_tb_per_sec(1.935)),
    )
    .with_calibration(DeviceCalibration::datacenter_gpu())
}

/// NVIDIA H100 SXM5 (Hopper, N5-class node).
///
/// 989.4 TFLOP/s dense FP16 (the figure the paper quotes), 1978.9 TFLOP/s
/// FP8, 3.35 TB/s HBM3, 50 MiB L2.
#[must_use]
pub fn h100_sxm() -> Accelerator {
    Accelerator::new(
        "H100-SXM",
        ComputeSpec::new([
            (Precision::Fp64, FlopThroughput::from_tera(33.5)),
            (Precision::Fp32, FlopThroughput::from_tera(66.9)),
            (Precision::Tf32, FlopThroughput::from_tera(494.7)),
            (Precision::Fp16, FlopThroughput::from_tera(989.4)),
            (Precision::Bf16, FlopThroughput::from_tera(989.4)),
            (Precision::Fp8, FlopThroughput::from_tera(1978.9)),
            (Precision::Int8, FlopThroughput::from_tera(1978.9)),
        ]),
        vec![
            MemoryLevel::shared_l1(Bytes::from_mib(29.4), Bandwidth::from_tb_per_sec(33.0)),
            MemoryLevel::l2(Bytes::from_mib(50.0), Bandwidth::from_tb_per_sec(6.5)),
        ],
        MemoryLevel::dram(Bytes::from_gb(80.0), Bandwidth::from_tb_per_sec(3.35)),
    )
    .with_calibration(DeviceCalibration::datacenter_gpu())
}

/// NVIDIA H200 SXM: H100 compute with HBM3e (141 GB, 4.8 TB/s).
#[must_use]
pub fn h200_sxm() -> Accelerator {
    h100_sxm()
        .with_dram(Bytes::from_gb(141.0), Bandwidth::from_tb_per_sec(4.8))
        .renamed("H200-SXM")
}

/// NVIDIA B200 (Blackwell, dual-die).
///
/// 2.25 PFLOP/s dense FP16, 4.5 PFLOP/s FP8, 9 PFLOP/s FP4,
/// 8 TB/s HBM3e, 192 GB.
#[must_use]
pub fn b200_sxm() -> Accelerator {
    Accelerator::new(
        "B200",
        ComputeSpec::new([
            (Precision::Fp64, FlopThroughput::from_tera(40.0)),
            (Precision::Fp32, FlopThroughput::from_tera(80.0)),
            (Precision::Tf32, FlopThroughput::from_tera(1125.0)),
            (Precision::Fp16, FlopThroughput::from_peta(2.25)),
            (Precision::Bf16, FlopThroughput::from_peta(2.25)),
            (Precision::Fp8, FlopThroughput::from_peta(4.5)),
            (Precision::Fp4, FlopThroughput::from_peta(9.0)),
            (Precision::Int8, FlopThroughput::from_peta(4.5)),
        ]),
        vec![
            MemoryLevel::shared_l1(Bytes::from_mib(58.0), Bandwidth::from_tb_per_sec(66.0)),
            MemoryLevel::l2(Bytes::from_mib(100.0), Bandwidth::from_tb_per_sec(13.0)),
        ],
        MemoryLevel::dram(Bytes::from_gb(192.0), Bandwidth::from_tb_per_sec(8.0)),
    )
    .with_calibration(DeviceCalibration::datacenter_gpu())
}

/// Google TPU v4 (the paper extends its framework "to accommodate TPUs
/// and custom architectures"). 275 TFLOP/s BF16, 1.2 TB/s HBM2 (32 GB),
/// 128 MiB of on-chip CMEM standing in as the last-level cache.
#[must_use]
pub fn tpu_v4() -> Accelerator {
    Accelerator::new(
        "TPU-v4",
        ComputeSpec::new([
            (Precision::Fp32, FlopThroughput::from_tera(34.0)),
            (Precision::Bf16, FlopThroughput::from_tera(275.0)),
            (Precision::Fp16, FlopThroughput::from_tera(275.0)),
            (Precision::Int8, FlopThroughput::from_tera(275.0)),
        ])
        // The MXU is a 128x128 systolic array.
        .with_tile(128, 128, 128),
        vec![
            MemoryLevel::shared_l1(Bytes::from_mib(16.0), Bandwidth::from_tb_per_sec(20.0)),
            MemoryLevel::l2(Bytes::from_mib(128.0), Bandwidth::from_tb_per_sec(5.0)),
        ],
        MemoryLevel::dram(Bytes::from_gb(32.0), Bandwidth::from_tb_per_sec(1.2)),
    )
    .with_calibration(DeviceCalibration::datacenter_gpu())
}

/// A 4-chip TPU v4 board joined by ICI links (~50 GB/s per direction per
/// chip toward its torus neighbours, aggregated here as one link).
#[must_use]
pub fn tpu_v4_board() -> NodeSpec {
    let ici = LinkSpec::new(
        "ICI",
        Bandwidth::from_gb_per_sec(300.0),
        optimus_units::Time::from_micros(2.0),
    );
    NodeSpec::new(tpu_v4(), 4, ici)
}

/// An 8-GPU A100 node with NVLink3.
#[must_use]
pub fn dgx_a100_node() -> NodeSpec {
    NodeSpec::new(a100_sxm_80gb(), 8, NvlinkGen::Gen3.link())
}

/// An 8-GPU H100 node with NVLink4.
#[must_use]
pub fn dgx_h100_node() -> NodeSpec {
    NodeSpec::new(h100_sxm(), 8, NvlinkGen::Gen4.link())
}

/// An 8-GPU H200 node with NVLink4.
#[must_use]
pub fn dgx_h200_node() -> NodeSpec {
    NodeSpec::new(h200_sxm(), 8, NvlinkGen::Gen4.link())
}

/// An 8-GPU B200 node with NVLink5.
#[must_use]
pub fn dgx_b200_node() -> NodeSpec {
    NodeSpec::new(b200_sxm(), 8, NvlinkGen::Gen5.link())
}

/// A100 cluster with HDR InfiniBand (200 GB/s per node) — the validation
/// platform of Table 1 and the `A100-HDR` point of Fig. 5.
#[must_use]
pub fn dgx_a100_hdr_cluster() -> ClusterSpec {
    let node = dgx_a100_node();
    let inter = nettech::ib_hdr(node.gpus_per_node);
    ClusterSpec::new("A100-HDR", node, inter)
}

/// H100 cluster with NDR InfiniBand (400 GB/s per node).
#[must_use]
pub fn dgx_h100_ndr_cluster() -> ClusterSpec {
    let node = dgx_h100_node();
    let inter = nettech::ib_ndr(node.gpus_per_node);
    ClusterSpec::new("H100-NDR", node, inter)
}

/// H100 cluster with an NVLink-Switch system as inter-node fabric.
#[must_use]
pub fn dgx_h100_nvs_cluster() -> ClusterSpec {
    let node = dgx_h100_node();
    let inter = nettech::nvlink_switch_system(NvlinkGen::Gen4);
    ClusterSpec::new("H100-NVS", node, inter)
}

/// H200 cluster with an NVLink-Switch system.
#[must_use]
pub fn dgx_h200_nvs_cluster() -> ClusterSpec {
    let node = dgx_h200_node();
    let inter = nettech::nvlink_switch_system(NvlinkGen::Gen4);
    ClusterSpec::new("H200-NVS", node, inter)
}

/// B200 cluster with NDR InfiniBand.
#[must_use]
pub fn dgx_b200_ndr_cluster() -> ClusterSpec {
    let node = dgx_b200_node();
    let inter = nettech::ib_ndr(node.gpus_per_node);
    ClusterSpec::new("B200-NDR", node, inter)
}

/// B200 cluster with an NVLink-Switch system.
#[must_use]
pub fn dgx_b200_nvs_cluster() -> ClusterSpec {
    let node = dgx_b200_node();
    let inter = nettech::nvlink_switch_system(NvlinkGen::Gen5);
    ClusterSpec::new("B200-NVS", node, inter)
}

/// A single-node "cluster" view of `node` (no inter-node fabric needed);
/// the inter-node link is a placeholder that collectives never select for
/// groups that fit in the node.
#[must_use]
pub fn single_node_cluster(name: impl Into<String>, node: NodeSpec) -> ClusterSpec {
    let inter = nettech::ib_ndr(node.gpus_per_node);
    ClusterSpec::new(name, node, inter)
}

/// A placeholder link for synthetic systems; ideal utilization.
#[must_use]
pub fn ideal_link(bandwidth: Bandwidth) -> LinkSpec {
    LinkSpec::new("ideal", bandwidth, optimus_units::Time::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_datasheet() {
        let a = a100_sxm_80gb();
        assert_eq!(a.peak(Precision::Fp16).unwrap().tera(), 312.0);
        assert!(a.peak(Precision::Fp8).is_err(), "Ampere has no FP8");
        assert!((a.dram.bandwidth.tb_per_sec() - 1.935).abs() < 1e-9);
    }

    #[test]
    fn h100_is_3x_a100_fp16() {
        let ratio = h100_sxm().peak(Precision::Fp16).unwrap().tera()
            / a100_sxm_80gb().peak(Precision::Fp16).unwrap().tera();
        assert!(
            ratio > 3.0,
            "paper: H100 triples A100 compute, got {ratio:.2}x"
        );
    }

    #[test]
    fn b200_supports_fp4() {
        let b = b200_sxm();
        assert_eq!(b.peak(Precision::Fp4).unwrap().tera(), 9000.0);
    }

    #[test]
    fn h200_keeps_h100_compute() {
        assert_eq!(
            h200_sxm().peak(Precision::Fp16).unwrap(),
            h100_sxm().peak(Precision::Fp16).unwrap()
        );
        assert_eq!(h200_sxm().dram.capacity.gb(), 141.0);
    }

    #[test]
    fn tpu_v4_matches_datasheet() {
        let t = tpu_v4();
        assert_eq!(t.peak(Precision::Bf16).unwrap().tera(), 275.0);
        assert_eq!(t.dram.capacity.gb(), 32.0);
        assert_eq!(t.compute.tile_k, 128, "systolic-array depth");
    }

    #[test]
    fn hdr_cluster_per_gpu_share() {
        let c = dgx_a100_hdr_cluster();
        assert_eq!(c.inter_link.bandwidth.gb_per_sec(), 25.0);
        assert_eq!(c.node.intra_link.bandwidth.gb_per_sec(), 300.0);
    }

    #[test]
    fn nvs_cluster_inter_equals_nvlink() {
        let c = dgx_b200_nvs_cluster();
        assert_eq!(c.inter_link.bandwidth, c.node.intra_link.bandwidth);
    }
}
