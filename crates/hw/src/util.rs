//! Size-dependent bandwidth-utilization model.

use optimus_units::{Bytes, Ratio};
use serde::{Deserialize, Serialize};

/// A saturating bandwidth-utilization curve.
///
/// The paper applies *utilization factors* in two places where the raw peak
/// bandwidth is unachievable:
///
/// * **GEMV kernels on DRAM** (§4.1): small matrices/vectors underutilize
///   DRAM bandwidth; the paper clusters profiled kernels to derive per-size
///   factors, and also evaluates a single constant factor.
/// * **Collectives on small messages** (§3.4, §4.3): inference all-reduces
///   move kilobytes and achieve a tiny fraction of link bandwidth.
///
/// We model both with the same smooth two-parameter curve
///
/// ```text
/// util(v) = max · v / (v + half_saturation)
/// ```
///
/// which saturates at `max` for large transfers and decays linearly for
/// small ones — the qualitative behaviour the paper's clustered factors
/// capture. A `half_saturation` of zero yields the constant-factor variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationCurve {
    /// Asymptotic utilization reached by very large transfers.
    pub max: Ratio,
    /// Transfer volume at which utilization reaches half of `max`.
    pub half_saturation: Bytes,
}

impl UtilizationCurve {
    /// A constant utilization factor, independent of transfer size.
    #[must_use]
    pub fn constant(max: Ratio) -> Self {
        Self {
            max,
            half_saturation: Bytes::ZERO,
        }
    }

    /// Ideal bandwidth: always 100% utilized.
    #[must_use]
    pub fn ideal() -> Self {
        Self::constant(Ratio::ONE)
    }

    /// Utilization achieved by a transfer of `volume`.
    #[must_use]
    pub fn factor(&self, volume: Bytes) -> Ratio {
        let v = volume.bytes();
        let h = self.half_saturation.bytes();
        if h == 0.0 {
            return self.max;
        }
        if v == 0.0 {
            return Ratio::ZERO;
        }
        Ratio::saturating(self.max.get() * v / (v + h))
    }
}

impl Default for UtilizationCurve {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_curve_ignores_size() {
        let c = UtilizationCurve::constant(Ratio::new(0.75));
        assert_eq!(c.factor(Bytes::new(1.0)), Ratio::new(0.75));
        assert_eq!(c.factor(Bytes::from_gb(10.0)), Ratio::new(0.75));
    }

    #[test]
    fn saturating_curve_monotonic() {
        let c = UtilizationCurve {
            max: Ratio::new(0.8),
            half_saturation: Bytes::from_mb(4.0),
        };
        let small = c.factor(Bytes::from_kib(16.0));
        let mid = c.factor(Bytes::from_mb(4.0));
        let big = c.factor(Bytes::from_gb(1.0));
        assert!(small < mid && mid < big);
        assert!((mid.get() - 0.4).abs() < 1e-9, "half saturation point");
        assert!(big.get() > 0.79, "approaches max");
    }

    #[test]
    fn zero_volume_is_zero_utilization() {
        let c = UtilizationCurve {
            max: Ratio::new(0.8),
            half_saturation: Bytes::from_mb(4.0),
        };
        assert_eq!(c.factor(Bytes::ZERO), Ratio::ZERO);
    }
}
