//! Failure-process shapes shared by the training-resilience and
//! fleet-serving fault models.
//!
//! A [`FailureProcess`] describes *how* failures arrive; the mean time
//! between failures itself stays wherever it always lived (the
//! `mtbf_s` field of `optimus-train`'s `CheckpointSpec` and
//! `optimus-serve`'s `FaultSpec`). Three shapes cover the regimes the
//! RAPID-LLM fleet studies document:
//!
//! * [`FailureProcess::Exponential`] — the memoryless baseline. Every
//!   pre-existing code path (Young–Daly closed forms, the serving outage
//!   streams) is defined over this shape and stays byte-identical.
//! * [`FailureProcess::Weibull`] — shape `k` controls the hazard: `k < 1`
//!   models infant mortality (burn-in failures cluster early, the
//!   signature of freshly provisioned GPU fleets), `k > 1` wear-out, and
//!   `k = 1` reduces *exactly* to the exponential process (the reduction
//!   is special-cased so closed forms reproduce bit-for-bit). The
//!   min-stability property of the Weibull family gives the cluster-level
//!   first-failure time in closed form: the minimum of `n` iid
//!   `Weibull(k, λ)` lifetimes is `Weibull(k, λ / n^{1/k})`, so the
//!   cluster MTBF is `mtbf / n^{1/k}` — much worse than `mtbf / n` when
//!   `k < 1`, which is precisely why infant mortality reorders strategy
//!   frontiers at scale.
//! * [`FailureProcess::RackCorrelated`] — failures also arrive per *rack*
//!   (shared power feed, leaf switch), superimposed on the per-GPU
//!   process. Rates add: the cluster failure rate is
//!   `gpus / mtbf + racks / rack_mtbf`, and a rack event takes
//!   `gpus / racks` devices down together — the training-side analogue of
//!   the serving fleet's `FaultDomain` machinery, with the same
//!   "blast radius" consequences for elastic recovery.

use serde::{Deserialize, Serialize};

/// The inter-arrival shape of a failure process. See the module docs for
/// the modeling background of each variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FailureProcess {
    /// Memoryless exponential failures — the classic Young–Daly regime.
    #[default]
    Exponential,
    /// Weibull-shaped failures with shape parameter `k`.
    Weibull {
        /// The Weibull shape `k`: `< 1` infant mortality, `1` exponential
        /// (bit-exact), `> 1` wear-out.
        shape: f64,
    },
    /// Per-GPU exponential failures plus a correlated per-rack
    /// exponential process whose events take a whole rack down at once.
    RackCorrelated {
        /// Number of racks the job's GPUs are split across (contiguous,
        /// near-even — the same convention as the serving fleet's
        /// `--domains`).
        racks: usize,
        /// Mean seconds of rack uptime between shared outages.
        rack_mtbf_s: f64,
    },
}

impl FailureProcess {
    /// Whether this is the exponential shape — including the `k = 1`
    /// Weibull, which is the same distribution and must price through the
    /// same closed forms bit-exactly.
    #[must_use]
    pub fn is_exponential(&self) -> bool {
        match self {
            Self::Exponential => true,
            Self::Weibull { shape } => *shape == 1.0,
            Self::RackCorrelated { .. } => false,
        }
    }

    /// Validates the shape parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a parameter is out of range
    /// (non-positive or non-finite Weibull shape, zero racks, or a
    /// non-positive/non-finite rack MTBF).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Exponential => Ok(()),
            Self::Weibull { shape } => {
                if shape.is_finite() && *shape > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "Weibull shape must be positive and finite, got {shape}"
                    ))
                }
            }
            Self::RackCorrelated { racks, rack_mtbf_s } => {
                if *racks == 0 {
                    return Err("rack-correlated process needs at least 1 rack".to_owned());
                }
                if !(rack_mtbf_s.is_finite() && *rack_mtbf_s > 0.0) {
                    return Err(format!(
                        "rack MTBF must be positive and finite, got {rack_mtbf_s}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// A copy safe to embed in JSON reports: non-finite shape or rack-MTBF
    /// sentinels are normalized to `0` (the vendored JSON writer emits
    /// `null` for non-finite numbers, and reports must stay null-free).
    #[must_use]
    pub fn json_safe(self) -> Self {
        match self {
            Self::Weibull { shape } if !shape.is_finite() => Self::Weibull { shape: 0.0 },
            Self::RackCorrelated { racks, rack_mtbf_s } if !rack_mtbf_s.is_finite() => {
                Self::RackCorrelated {
                    racks,
                    rack_mtbf_s: 0.0,
                }
            }
            other => other,
        }
    }

    /// The cluster-level mean time between job-stopping failures for
    /// `gpus` devices whose individual mean lifetime is `mtbf_s`:
    ///
    /// * exponential — rates add: `mtbf / n`;
    /// * Weibull — min-stability: `mtbf / n^{1/k}` (the minimum of `n` iid
    ///   Weibull lifetimes is Weibull with the scale divided by
    ///   `n^{1/k}`, and the mean scales with the scale); `k = 1` takes the
    ///   exponential branch so the division is bit-identical;
    /// * rack-correlated — per-GPU and per-rack Poisson rates superpose:
    ///   `1 / (n / mtbf + racks / rack_mtbf)`.
    #[must_use]
    pub fn cluster_mtbf(&self, mtbf_s: f64, gpus: usize) -> f64 {
        let n = gpus as f64;
        match self {
            Self::Exponential => mtbf_s / n,
            Self::Weibull { shape } => {
                if *shape == 1.0 {
                    mtbf_s / n
                } else {
                    mtbf_s / n.powf(1.0 / shape)
                }
            }
            Self::RackCorrelated { racks, rack_mtbf_s } => {
                1.0 / (n / mtbf_s + *racks as f64 / rack_mtbf_s)
            }
        }
    }
}

impl core::fmt::Display for FailureProcess {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Exponential => write!(f, "exponential"),
            Self::Weibull { shape } => write!(f, "weibull(k={shape})"),
            Self::RackCorrelated { racks, rack_mtbf_s } => {
                write!(f, "{racks} rack(s) @ mtbf {rack_mtbf_s} s + per-GPU")
            }
        }
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer used to
/// derive independent RNG streams from a base seed. Every seeded
/// simulation in the workspace (serving fault streams, training rework
/// sampling) mixes its stream constants through this same function so
/// streams stay decorrelated and reproducible across crates.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, n = 9
/// coefficients — ~15 significant digits over the range the failure
/// models use). Needed to convert a Weibull *mean* into its *scale*:
/// `mean = scale · Γ(1 + 1/k)`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The scale parameter of a Weibull distribution with the given mean and
/// shape: `scale = mean / Γ(1 + 1/k)`. For `k = 1` this is exactly the
/// mean (`Γ(2) = 1`; special-cased so no approximation error leaks in).
#[must_use]
pub fn weibull_scale(mean: f64, shape: f64) -> f64 {
    if shape == 1.0 {
        mean
    } else {
        mean / ln_gamma(1.0 + 1.0 / shape).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_and_unit_weibull_agree_bitwise() {
        let exp = FailureProcess::Exponential;
        let w1 = FailureProcess::Weibull { shape: 1.0 };
        for gpus in [1, 8, 64, 16_384] {
            assert_eq!(
                exp.cluster_mtbf(50_000.0 * 3600.0, gpus).to_bits(),
                w1.cluster_mtbf(50_000.0 * 3600.0, gpus).to_bits(),
                "k = 1 must take the exponential branch verbatim"
            );
        }
        assert!(w1.is_exponential());
    }

    #[test]
    fn infant_mortality_degrades_cluster_mtbf_superlinearly() {
        let exp = FailureProcess::Exponential;
        let infant = FailureProcess::Weibull { shape: 0.7 };
        let wearout = FailureProcess::Weibull { shape: 1.5 };
        let m = 1e8;
        assert!(infant.cluster_mtbf(m, 64) < exp.cluster_mtbf(m, 64));
        assert!(wearout.cluster_mtbf(m, 64) > exp.cluster_mtbf(m, 64));
        // Single GPU: shape is irrelevant to the mean.
        assert!((infant.cluster_mtbf(m, 1) - m).abs() < 1e-3);
    }

    #[test]
    fn rack_correlation_adds_rates() {
        let racks = FailureProcess::RackCorrelated {
            racks: 8,
            rack_mtbf_s: 1e6,
        };
        let m = racks.cluster_mtbf(1e8, 64);
        let expect = 1.0 / (64.0 / 1e8 + 8.0 / 1e6);
        assert!((m - expect).abs() < 1e-9);
        // Strictly worse than per-GPU failures alone.
        assert!(m < FailureProcess::Exponential.cluster_mtbf(1e8, 64));
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        assert!(FailureProcess::Exponential.validate().is_ok());
        assert!(FailureProcess::Weibull { shape: 0.7 }.validate().is_ok());
        assert!(FailureProcess::Weibull { shape: 0.0 }.validate().is_err());
        assert!(FailureProcess::Weibull { shape: -1.0 }.validate().is_err());
        assert!(FailureProcess::Weibull {
            shape: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(FailureProcess::RackCorrelated {
            racks: 0,
            rack_mtbf_s: 1e6
        }
        .validate()
        .is_err());
        assert!(FailureProcess::RackCorrelated {
            racks: 4,
            rack_mtbf_s: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn json_safe_zeroes_non_finite_sentinels() {
        let w = FailureProcess::Weibull {
            shape: f64::INFINITY,
        }
        .json_safe();
        assert_eq!(w, FailureProcess::Weibull { shape: 0.0 });
        let r = FailureProcess::RackCorrelated {
            racks: 2,
            rack_mtbf_s: f64::INFINITY,
        }
        .json_safe();
        assert_eq!(
            r,
            FailureProcess::RackCorrelated {
                racks: 2,
                rack_mtbf_s: 0.0
            }
        );
    }

    #[test]
    fn lanczos_gamma_hits_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(0.5) = √π, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(0.5) - core::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Weibull mean/scale relation: k = 2 ⇒ mean = scale·√π/2.
        let scale = weibull_scale(100.0, 2.0);
        assert!((scale * core::f64::consts::PI.sqrt() / 2.0 - 100.0).abs() < 1e-9);
        assert_eq!(weibull_scale(123.0, 1.0), 123.0);
    }
}
