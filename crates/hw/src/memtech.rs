//! Catalog of off-chip DRAM memory technologies.
//!
//! Bandwidths follow the values the paper quotes in its case studies:
//! Fig. 6 sweeps HBM2 (1 TB/s) → HBM4 (projected 3.3 TB/s) for training,
//! Fig. 9 sweeps GDDR6 (600 GB/s) → HBM3e (4.8 TB/s) plus a futuristic
//! *HBMX* (6.8 TB/s) for inference. Note the paper's HBM3 figure for the
//! technology sweep (2.6 TB/s) differs from the H100 product's stack
//! (3.35 TB/s); both appear here — presets use datasheet values, sweeps use
//! this catalog.

use optimus_units::{Bandwidth, Bytes};
use serde::{Deserialize, Serialize};

/// A DRAM memory technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DramTechnology {
    /// GDDR6 graphics memory.
    Gddr6,
    /// First-generation High-Bandwidth Memory 2.
    Hbm2,
    /// HBM2E.
    Hbm2e,
    /// HBM3 (paper's technology-sweep rating).
    Hbm3,
    /// HBM3E.
    Hbm3e,
    /// HBM4 (projected).
    Hbm4,
    /// Futuristic "HBMX" considered in the paper's Fig. 9.
    HbmX,
}

impl DramTechnology {
    /// Per-device bandwidth of a full stack complement of this technology.
    #[must_use]
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            Self::Gddr6 => Bandwidth::from_gb_per_sec(600.0),
            Self::Hbm2 => Bandwidth::from_tb_per_sec(1.0),
            Self::Hbm2e => Bandwidth::from_tb_per_sec(1.9),
            Self::Hbm3 => Bandwidth::from_tb_per_sec(2.6),
            Self::Hbm3e => Bandwidth::from_tb_per_sec(4.8),
            Self::Hbm4 => Bandwidth::from_tb_per_sec(3.3),
            Self::HbmX => Bandwidth::from_tb_per_sec(6.8),
        }
    }

    /// Typical per-device capacity shipped with this technology.
    #[must_use]
    pub fn typical_capacity(self) -> Bytes {
        match self {
            Self::Gddr6 => Bytes::from_gb(48.0),
            Self::Hbm2 => Bytes::from_gb(40.0),
            Self::Hbm2e => Bytes::from_gb(80.0),
            Self::Hbm3 => Bytes::from_gb(80.0),
            Self::Hbm3e => Bytes::from_gb(141.0),
            Self::Hbm4 => Bytes::from_gb(192.0),
            Self::HbmX => Bytes::from_gb(256.0),
        }
    }

    /// The training-sweep generations of Fig. 6 (HBM2 → HBM4).
    #[must_use]
    pub fn training_sweep() -> &'static [Self] {
        &[Self::Hbm2, Self::Hbm2e, Self::Hbm3, Self::Hbm4]
    }

    /// The inference-sweep generations of Fig. 9 (GDDR6 → HBMX).
    #[must_use]
    pub fn inference_sweep() -> &'static [Self] {
        &[
            Self::Gddr6,
            Self::Hbm2,
            Self::Hbm2e,
            Self::Hbm3,
            Self::Hbm3e,
            Self::HbmX,
        ]
    }
}

impl core::fmt::Display for DramTechnology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Gddr6 => "GDDR6",
            Self::Hbm2 => "HBM2",
            Self::Hbm2e => "HBM2E",
            Self::Hbm3 => "HBM3",
            Self::Hbm3e => "HBM3E",
            Self::Hbm4 => "HBM4",
            Self::HbmX => "HBMX",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidths_match_paper() {
        assert_eq!(DramTechnology::Gddr6.bandwidth().gb_per_sec(), 600.0);
        assert_eq!(DramTechnology::Hbm2.bandwidth().tb_per_sec(), 1.0);
        assert_eq!(DramTechnology::Hbm2e.bandwidth().tb_per_sec(), 1.9);
        assert_eq!(DramTechnology::Hbm3.bandwidth().tb_per_sec(), 2.6);
        assert_eq!(DramTechnology::Hbm3e.bandwidth().tb_per_sec(), 4.8);
        assert_eq!(DramTechnology::Hbm4.bandwidth().tb_per_sec(), 3.3);
        assert_eq!(DramTechnology::HbmX.bandwidth().tb_per_sec(), 6.8);
    }

    #[test]
    fn sweeps_are_bandwidth_relevant() {
        // The inference sweep is ordered by increasing bandwidth.
        let bws: Vec<f64> = DramTechnology::inference_sweep()
            .iter()
            .map(|t| t.bandwidth().gb_per_sec())
            .collect();
        assert!(bws.windows(2).all(|w| w[0] < w[1]));
    }
}
