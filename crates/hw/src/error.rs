//! Error type for hardware-description construction.

/// Error produced when a hardware description is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A compute spec has no entry for the requested precision.
    UnsupportedPrecision {
        /// The precision that was requested.
        precision: crate::Precision,
        /// The accelerator that lacks it.
        accelerator: String,
    },
    /// A memory hierarchy was declared with levels out of capacity order.
    InvalidHierarchy {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl core::fmt::Display for HwError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnsupportedPrecision {
                precision,
                accelerator,
            } => write!(
                f,
                "accelerator `{accelerator}` has no peak throughput for {precision}"
            ),
            Self::InvalidHierarchy { reason } => {
                write!(f, "invalid memory hierarchy: {reason}")
            }
        }
    }
}

impl std::error::Error for HwError {}
