//! Numeric precisions supported by the modeled accelerators.

use serde::{Deserialize, Serialize};

/// A numeric format used for model weights, activations, and arithmetic.
///
/// The byte width drives both memory-traffic volumes (a FP4 weight moves half
/// a byte) and which peak-throughput entry of a [`crate::ComputeSpec`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Precision {
    /// IEEE 754 double precision (8 bytes).
    Fp64,
    /// IEEE 754 single precision (4 bytes).
    Fp32,
    /// NVIDIA TensorFloat-32 (stored as 4 bytes, reduced-mantissa matmul).
    Tf32,
    /// IEEE half precision (2 bytes).
    Fp16,
    /// bfloat16 (2 bytes).
    Bf16,
    /// 8-bit floating point (1 byte), e.g. the H100 transformer engine.
    Fp8,
    /// 4-bit floating point (half a byte), introduced with Blackwell.
    Fp4,
    /// 8-bit integer (1 byte).
    Int8,
}

impl Precision {
    /// Storage width in bytes (fractional for sub-byte formats).
    ///
    /// ```
    /// use optimus_hw::Precision;
    /// assert_eq!(Precision::Fp16.bytes(), 2.0);
    /// assert_eq!(Precision::Fp4.bytes(), 0.5);
    /// ```
    #[must_use]
    pub fn bytes(self) -> f64 {
        match self {
            Self::Fp64 => 8.0,
            Self::Fp32 | Self::Tf32 => 4.0,
            Self::Fp16 | Self::Bf16 => 2.0,
            Self::Fp8 | Self::Int8 => 1.0,
            Self::Fp4 => 0.5,
        }
    }

    /// All precisions, widest first.
    #[must_use]
    pub fn all() -> &'static [Precision] {
        &[
            Self::Fp64,
            Self::Fp32,
            Self::Tf32,
            Self::Fp16,
            Self::Bf16,
            Self::Fp8,
            Self::Fp4,
            Self::Int8,
        ]
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Fp64 => "FP64",
            Self::Fp32 => "FP32",
            Self::Tf32 => "TF32",
            Self::Fp16 => "FP16",
            Self::Bf16 => "BF16",
            Self::Fp8 => "FP8",
            Self::Fp4 => "FP4",
            Self::Int8 => "INT8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(Precision::Fp64.bytes(), 8.0);
        assert_eq!(Precision::Tf32.bytes(), 4.0);
        assert_eq!(Precision::Bf16.bytes(), 2.0);
        assert_eq!(Precision::Fp8.bytes(), 1.0);
        assert_eq!(Precision::Fp4.bytes(), 0.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::Fp16.to_string(), "FP16");
        assert_eq!(Precision::Fp4.to_string(), "FP4");
    }
}
