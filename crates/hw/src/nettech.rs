//! Catalog of interconnect technologies (intra- and inter-node).
//!
//! Bandwidth conventions follow [`crate::LinkSpec`]: always the
//! **per-participant, per-direction** bandwidth. For InfiniBand fabrics the
//! constructor takes the *node* injection bandwidth and divides it by the
//! GPUs per node; for NVLink the per-GPU figure is used directly.

use crate::{LinkSpec, UtilizationCurve};
use optimus_units::{Bandwidth, Bytes, Ratio, Time};
use serde::{Deserialize, Serialize};

/// Default NVLink collective latency (one hop, NCCL-style).
const NVLINK_LATENCY_US: f64 = 3.0;
/// Default InfiniBand collective latency (one hop).
const IB_LATENCY_US: f64 = 5.0;

/// Saturating utilization used for all links: 80% of peak for large
/// transfers, half-saturation at 4 MiB — the regime where NCCL bus
/// bandwidth measurements flatten out.
fn default_net_utilization() -> UtilizationCurve {
    UtilizationCurve {
        max: Ratio::new(0.80),
        half_saturation: Bytes::from_mib(4.0),
    }
}

/// NVLink generations (per-GPU, per-direction aggregate bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NvlinkGen {
    /// NVLink 3 (A100): 300 GB/s per direction.
    Gen3,
    /// NVLink 4 (H100/H200): 450 GB/s per direction.
    Gen4,
    /// NVLink 5 (B200): 900 GB/s per direction.
    Gen5,
}

impl NvlinkGen {
    /// Per-GPU per-direction bandwidth.
    #[must_use]
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            Self::Gen3 => Bandwidth::from_gb_per_sec(300.0),
            Self::Gen4 => Bandwidth::from_gb_per_sec(450.0),
            Self::Gen5 => Bandwidth::from_gb_per_sec(900.0),
        }
    }

    /// The intra-node link for this generation.
    #[must_use]
    pub fn link(self) -> LinkSpec {
        let name = match self {
            Self::Gen3 => "NVLink3",
            Self::Gen4 => "NVLink4",
            Self::Gen5 => "NVLink5",
        };
        LinkSpec::new(name, self.bandwidth(), Time::from_micros(NVLINK_LATENCY_US))
            .with_utilization(default_net_utilization())
    }
}

impl core::fmt::Display for NvlinkGen {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Gen3 => f.write_str("NV3"),
            Self::Gen4 => f.write_str("NV4"),
            Self::Gen5 => f.write_str("NV5"),
        }
    }
}

/// Builds an InfiniBand inter-node link from the node injection bandwidth.
///
/// `node_bandwidth` is the aggregate NIC bandwidth of one node (e.g.
/// 200 GB/s for a DGX A100 with eight HDR adapters); each of the
/// `gpus_per_node` accelerators gets an equal share.
///
/// # Panics
///
/// Panics if `gpus_per_node` is zero.
#[must_use]
pub fn infiniband(
    name: impl Into<String>,
    node_bandwidth: Bandwidth,
    gpus_per_node: usize,
) -> LinkSpec {
    assert!(gpus_per_node > 0, "gpus_per_node must be positive");
    LinkSpec::new(
        name,
        node_bandwidth / gpus_per_node as f64,
        Time::from_micros(IB_LATENCY_US),
    )
    .with_utilization(default_net_utilization())
}

/// HDR InfiniBand node fabric: 200 GB/s per node (paper §5.2, A100 cluster).
#[must_use]
pub fn ib_hdr(gpus_per_node: usize) -> LinkSpec {
    infiniband("HDR-IB", Bandwidth::from_gb_per_sec(200.0), gpus_per_node)
}

/// NDR InfiniBand node fabric: 400 GB/s per node (paper §5.2, H100+ clusters).
#[must_use]
pub fn ib_ndr(gpus_per_node: usize) -> LinkSpec {
    infiniband("NDR-IB", Bandwidth::from_gb_per_sec(400.0), gpus_per_node)
}

/// An NVLink-Switch system: inter-node networking at intra-node NVLink
/// bandwidth (the paper's "NVS" configurations in Fig. 5).
#[must_use]
pub fn nvlink_switch_system(gen: NvlinkGen) -> LinkSpec {
    let mut link = gen.link();
    link.name = format!("NVS-{gen}");
    link
}

/// The inter-node technology sweep of Fig. 6: `NDR-x8` (100 GB/s per node),
/// `XDR-x8` (200 GB/s), `GDR-x8` (400 GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum IbSweepGen {
    /// NDR-x8: 100 GB/s node injection bandwidth.
    NdrX8,
    /// XDR-x8: 200 GB/s.
    XdrX8,
    /// GDR-x8: 400 GB/s.
    GdrX8,
}

impl IbSweepGen {
    /// Node injection bandwidth for this generation.
    #[must_use]
    pub fn node_bandwidth(self) -> Bandwidth {
        match self {
            Self::NdrX8 => Bandwidth::from_gb_per_sec(100.0),
            Self::XdrX8 => Bandwidth::from_gb_per_sec(200.0),
            Self::GdrX8 => Bandwidth::from_gb_per_sec(400.0),
        }
    }

    /// The inter-node link for a node with `gpus_per_node` accelerators.
    #[must_use]
    pub fn link(self, gpus_per_node: usize) -> LinkSpec {
        infiniband(self.to_string(), self.node_bandwidth(), gpus_per_node)
    }

    /// All sweep generations in increasing-bandwidth order.
    #[must_use]
    pub fn all() -> &'static [Self] {
        &[Self::NdrX8, Self::XdrX8, Self::GdrX8]
    }
}

impl core::fmt::Display for IbSweepGen {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NdrX8 => f.write_str("NDR-x8"),
            Self::XdrX8 => f.write_str("XDR-x8"),
            Self::GdrX8 => f.write_str("GDR-x8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infiniband_divides_node_bandwidth() {
        let link = ib_hdr(8);
        assert_eq!(link.bandwidth.gb_per_sec(), 25.0);
        let link = ib_ndr(8);
        assert_eq!(link.bandwidth.gb_per_sec(), 50.0);
    }

    #[test]
    fn nvlink_bandwidths() {
        assert_eq!(NvlinkGen::Gen3.bandwidth().gb_per_sec(), 300.0);
        assert_eq!(NvlinkGen::Gen4.bandwidth().gb_per_sec(), 450.0);
        assert_eq!(NvlinkGen::Gen5.bandwidth().gb_per_sec(), 900.0);
    }

    #[test]
    fn nvs_matches_nvlink_bandwidth() {
        let nvs = nvlink_switch_system(NvlinkGen::Gen4);
        assert_eq!(nvs.bandwidth, NvlinkGen::Gen4.bandwidth());
        assert!(nvs.name.contains("NVS"));
    }

    #[test]
    fn fig6_sweep_bandwidths() {
        let bws: Vec<f64> = IbSweepGen::all()
            .iter()
            .map(|g| g.node_bandwidth().gb_per_sec())
            .collect();
        assert_eq!(bws, vec![100.0, 200.0, 400.0]);
    }
}
