//! Architecture abstraction layer for the Optimus performance-modeling suite.
//!
//! The paper (§3.1) inserts an *architecture abstraction layer* between the
//! micro-architecture engine and the performance-prediction engine: instead of
//! requiring low-level technology parameters, an accelerator is described by
//! its **high-level performance drivers** — compute throughput per precision,
//! the capacities and bandwidths of each memory-hierarchy level, DRAM
//! capacity, and the intra-/inter-node interconnects. This makes it easy to
//! describe commercial parts (A100, H100, H200, B200) whose silicon details
//! are not public, while the `optimus-tech` µArch engine can still
//! *synthesize* the same description from technology parameters for DSE.
//!
//! # Quick tour
//!
//! ```
//! use optimus_hw::{presets, Precision};
//!
//! let a100 = presets::a100_sxm_80gb();
//! assert_eq!(a100.compute.peak(Precision::Fp16).unwrap().tera(), 312.0);
//! assert_eq!(a100.dram.capacity.gb().round(), 80.0);
//!
//! let cluster = presets::dgx_a100_hdr_cluster();
//! assert_eq!(cluster.node.gpus_per_node, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod calib;
mod compute;
mod error;
mod link;
mod memory;
pub mod memtech;
pub mod nettech;
mod precision;
pub mod presets;
pub mod reliability;
mod system;
mod util;

pub use accelerator::Accelerator;
pub use calib::DeviceCalibration;
pub use compute::ComputeSpec;
pub use error::HwError;
pub use link::LinkSpec;
pub use memory::{MemoryLevel, MemoryLevelKind};
pub use precision::Precision;
pub use reliability::FailureProcess;
pub use system::{ClusterSpec, NodeSpec};
pub use util::UtilizationCurve;
