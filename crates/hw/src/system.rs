//! Node- and cluster-level system descriptions.

use crate::{Accelerator, LinkSpec};
use serde::{Deserialize, Serialize};

/// A multi-accelerator node (e.g. a DGX box): identical accelerators joined
/// by an intra-node fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The accelerator model populating the node.
    pub accelerator: Accelerator,
    /// Number of accelerators per node.
    pub gpus_per_node: usize,
    /// Intra-node link (NVLink/NVSwitch), per-GPU per-direction bandwidth.
    pub intra_link: LinkSpec,
}

impl NodeSpec {
    /// Creates a node description.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_node` is zero.
    #[must_use]
    pub fn new(accelerator: Accelerator, gpus_per_node: usize, intra_link: LinkSpec) -> Self {
        assert!(gpus_per_node > 0, "a node needs at least one GPU");
        Self {
            accelerator,
            gpus_per_node,
            intra_link,
        }
    }
}

/// A cluster: homogeneous nodes joined by an inter-node network.
///
/// `inter_link.bandwidth` is the **per-GPU share** of the node's injection
/// bandwidth (node NIC bandwidth divided by GPUs per node), which is the
/// bandwidth each member of a cross-node ring actually gets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Descriptive name, e.g. `"A100-HDR"`.
    pub name: String,
    /// The node design.
    pub node: NodeSpec,
    /// Inter-node link, per-GPU share.
    pub inter_link: LinkSpec,
}

impl ClusterSpec {
    /// Creates a cluster description.
    #[must_use]
    pub fn new(name: impl Into<String>, node: NodeSpec, inter_link: LinkSpec) -> Self {
        Self {
            name: name.into(),
            node,
            inter_link,
        }
    }

    /// The accelerator model used throughout the cluster.
    #[must_use]
    pub fn accelerator(&self) -> &Accelerator {
        &self.node.accelerator
    }

    /// Chooses the link used by a collective spanning `group_size` ranks:
    /// the NVLink fabric if the group fits in one node, the inter-node
    /// network otherwise. TP/SP groups are placed intra-node by the device
    /// mapper precisely to exploit this.
    #[must_use]
    pub fn link_for_group(&self, group_size: usize) -> &LinkSpec {
        if group_size <= self.node.gpus_per_node {
            &self.node.intra_link
        } else {
            &self.inter_link
        }
    }

    /// Returns a copy with a different accelerator (keeping node shape and
    /// links) — used by technology sweeps.
    #[must_use]
    pub fn with_accelerator(mut self, accelerator: Accelerator) -> Self {
        self.node.accelerator = accelerator;
        self
    }

    /// Returns a copy with a different inter-node link.
    #[must_use]
    pub fn with_inter_link(mut self, link: LinkSpec) -> Self {
        self.inter_link = link;
        self
    }

    /// Returns a copy with a different intra-node link.
    #[must_use]
    pub fn with_intra_link(mut self, link: LinkSpec) -> Self {
        self.node.intra_link = link;
        self
    }
}

impl core::fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} x {} per node, intra {}, inter {}",
            self.name,
            self.node.gpus_per_node,
            self.node.accelerator.name,
            self.node.intra_link.name,
            self.inter_link.name
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn group_link_selection() {
        let c = presets::dgx_a100_hdr_cluster();
        assert_eq!(c.link_for_group(8).name, c.node.intra_link.name);
        assert_eq!(c.link_for_group(9).name, c.inter_link.name);
    }
}
