//! Compute-throughput description of an accelerator.

use crate::{HwError, Precision};
use optimus_units::FlopThroughput;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Peak arithmetic throughput of an accelerator, per precision, together
/// with the matmul tile granularity of its matrix units.
///
/// The tile granularity is used by the roofline model to derive the
/// *tile-quantization* efficiency of a GEMM: an `m x n` output that is not a
/// multiple of the hardware tile wastes the partial tiles, which is a major
/// reason skinny GEMMs run below peak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeSpec {
    peaks: BTreeMap<Precision, FlopThroughput>,
    /// Output-tile rows processed per matmul macro-tile.
    pub tile_m: usize,
    /// Output-tile columns processed per matmul macro-tile.
    pub tile_n: usize,
    /// Reduction depth processed per matmul macro-tile step.
    pub tile_k: usize,
}

impl ComputeSpec {
    /// Default macro-tile of modern tensor-core GPUs (CTA-level tile).
    pub const DEFAULT_TILE: (usize, usize, usize) = (128, 128, 32);

    /// Creates a spec from `(precision, peak)` pairs with the default tile.
    #[must_use]
    pub fn new(peaks: impl IntoIterator<Item = (Precision, FlopThroughput)>) -> Self {
        let (tile_m, tile_n, tile_k) = Self::DEFAULT_TILE;
        Self {
            peaks: peaks.into_iter().collect(),
            tile_m,
            tile_n,
            tile_k,
        }
    }

    /// Sets the matmul macro-tile granularity.
    #[must_use]
    pub fn with_tile(mut self, m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "tile dimensions must be positive");
        self.tile_m = m;
        self.tile_n = n;
        self.tile_k = k;
        self
    }

    /// Peak throughput at `precision`, if the accelerator supports it.
    #[must_use]
    pub fn peak(&self, precision: Precision) -> Option<FlopThroughput> {
        self.peaks.get(&precision).copied()
    }

    /// Peak throughput at `precision`, or an error naming the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedPrecision`] when the precision has no
    /// entry (e.g. FP4 on an A100).
    pub fn peak_or_err(
        &self,
        precision: Precision,
        accelerator: &str,
    ) -> Result<FlopThroughput, HwError> {
        self.peak(precision)
            .ok_or_else(|| HwError::UnsupportedPrecision {
                precision,
                accelerator: accelerator.to_owned(),
            })
    }

    /// Iterates over all `(precision, peak)` entries, widest precision first.
    pub fn iter(&self) -> impl Iterator<Item = (Precision, FlopThroughput)> + '_ {
        self.peaks.iter().map(|(p, t)| (*p, *t))
    }

    /// Returns a copy with every peak scaled by `factor` (used by the µArch
    /// engine when deriving hypothetical designs from a baseline).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self {
            peaks: self.peaks.iter().map(|(p, t)| (*p, *t * factor)).collect(),
            tile_m: self.tile_m,
            tile_n: self.tile_n,
            tile_k: self.tile_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ComputeSpec {
        ComputeSpec::new([
            (Precision::Fp16, FlopThroughput::from_tera(312.0)),
            (Precision::Fp32, FlopThroughput::from_tera(19.5)),
        ])
    }

    #[test]
    fn lookup_present_and_absent() {
        let s = spec();
        assert_eq!(s.peak(Precision::Fp16).unwrap().tera(), 312.0);
        assert!(s.peak(Precision::Fp4).is_none());
        let err = s.peak_or_err(Precision::Fp4, "A100").unwrap_err();
        assert!(err.to_string().contains("A100"));
        assert!(err.to_string().contains("FP4"));
    }

    #[test]
    fn scaling() {
        let s = spec().scaled(2.0);
        assert_eq!(s.peak(Precision::Fp16).unwrap().tera(), 624.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let _ = spec().with_tile(0, 128, 32);
    }
}
