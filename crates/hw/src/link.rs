//! Interconnect link descriptions.

use crate::UtilizationCurve;
use optimus_units::{Bandwidth, Bytes, Time};
use serde::{Deserialize, Serialize};

/// A communication link as seen by **one participant** of a collective.
///
/// `bandwidth` is the per-participant, per-direction injection bandwidth:
/// for NVLink this is one GPU's aggregate NVLink bandwidth in one direction;
/// for InfiniBand clusters it is the node's NIC bandwidth divided by the
/// GPUs per node (each GPU of a cross-node ring gets its share of the NICs).
/// The ring/tree collective formulas (Eqs. 3–4 of the paper) are written in
/// terms of exactly this quantity.
///
/// `utilization` derates the bandwidth for small transfers (§3.4: "for
/// inference, the data volume is generally low and the network bandwidth is
/// underutilized. We apply a utilization factor to derive the actual
/// bandwidth.").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name, e.g. `"NVLink3"` or `"HDR-IB"`.
    pub name: String,
    /// Per-participant, per-direction peak bandwidth.
    pub bandwidth: Bandwidth,
    /// One-hop message latency.
    pub latency: Time,
    /// Message-size-dependent bandwidth derating.
    pub utilization: UtilizationCurve,
}

impl LinkSpec {
    /// Creates a link with an ideal (size-independent, 100%) utilization.
    #[must_use]
    pub fn new(name: impl Into<String>, bandwidth: Bandwidth, latency: Time) -> Self {
        Self {
            name: name.into(),
            bandwidth,
            latency,
            utilization: UtilizationCurve::ideal(),
        }
    }

    /// Sets the utilization curve.
    #[must_use]
    pub fn with_utilization(mut self, curve: UtilizationCurve) -> Self {
        self.utilization = curve;
        self
    }

    /// Effective bandwidth achieved by a transfer of `volume` per
    /// participant.
    #[must_use]
    pub fn effective_bandwidth(&self, volume: Bytes) -> Bandwidth {
        self.bandwidth * self.utilization.factor(volume).get()
    }

    /// Returns a copy with the peak bandwidth replaced (used when sweeping
    /// network technologies in the case studies).
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }
}

impl core::fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} ({}, {} latency)",
            self.name, self.bandwidth, self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_units::Ratio;

    #[test]
    fn effective_bandwidth_derates_small_messages() {
        let link = LinkSpec::new(
            "NVLink3",
            Bandwidth::from_gb_per_sec(300.0),
            Time::from_micros(3.0),
        )
        .with_utilization(UtilizationCurve {
            max: Ratio::new(0.8),
            half_saturation: Bytes::from_mb(4.0),
        });
        let big = link.effective_bandwidth(Bytes::from_mb(50.0));
        let small = link.effective_bandwidth(Bytes::from_kib(10.0));
        assert!(big.gb_per_sec() > 200.0, "large messages near peak: {big}");
        assert!(
            small.gb_per_sec() < 1.0,
            "small messages heavily derated: {small}"
        );
    }
}
