//! Per-device calibration constants.

use crate::UtilizationCurve;
use optimus_units::{Bytes, Ratio, Time};
use serde::{Deserialize, Serialize};

/// Empirical derating constants for one accelerator.
///
/// The paper calibrates analogous factors once against measurements
/// (GEMV DRAM-utilization clusters in §4.1, implicit compute-efficiency via
/// the validated training runs in §4.2) and then freezes them for all case
/// studies. We do the same: these constants are set per architecture family
/// in [`crate::presets`] and never tuned per experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCalibration {
    /// Fraction of peak matmul throughput achievable by a large,
    /// well-shaped (fat) GEMM after all software effects — what Megatron-LM
    /// style training kernels sustain in practice.
    pub gemm_peak_fraction: Ratio,
    /// DRAM bandwidth utilization as a function of the kernel's DRAM
    /// traffic volume (the paper's clustered GEMV utilization factors).
    pub dram_utilization: UtilizationCurve,
    /// Utilization applied to on-chip (L2, shared) bandwidths.
    pub onchip_utilization: Ratio,
    /// Fixed per-kernel software overhead (launch + runtime bookkeeping).
    /// Dominates very small kernels, as the paper observes for small GEMVs.
    pub kernel_overhead: Time,
}

impl DeviceCalibration {
    /// Calibration of a modern data-center GPU (A100/H100 class).
    ///
    /// * ~78% of peak for fat GEMMs (≈ the MFU Megatron-LM reports once
    ///   communication is excluded);
    /// * DRAM utilization saturating at 82% with a 2 MiB half-saturation
    ///   volume (LLM-relevant GEMV/decode kernels move tens of MB and reach
    ///   ~65–80% of peak DRAM bandwidth; kilobyte-sized kernels collapse);
    /// * 4 µs kernel overhead.
    #[must_use]
    pub fn datacenter_gpu() -> Self {
        Self {
            gemm_peak_fraction: Ratio::new(0.78),
            dram_utilization: UtilizationCurve {
                max: Ratio::new(0.82),
                half_saturation: Bytes::from_mib(2.0),
            },
            onchip_utilization: Ratio::new(0.85),
            kernel_overhead: Time::from_micros(4.0),
        }
    }

    /// An idealized device with no derating — useful in unit tests where
    /// hand-computed roofline numbers must match exactly.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            gemm_peak_fraction: Ratio::ONE,
            dram_utilization: UtilizationCurve::ideal(),
            onchip_utilization: Ratio::ONE,
            kernel_overhead: Time::ZERO,
        }
    }

    /// Replaces the DRAM-utilization curve with a constant factor (the
    /// paper's simplified "constant DRAM utilization" variant in Fig. 3).
    #[must_use]
    pub fn with_constant_dram_utilization(mut self, factor: Ratio) -> Self {
        self.dram_utilization = UtilizationCurve::constant(factor);
        self
    }
}

impl Default for DeviceCalibration {
    /// Defaults to [`DeviceCalibration::datacenter_gpu`].
    fn default() -> Self {
        Self::datacenter_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_has_no_derating() {
        let c = DeviceCalibration::ideal();
        assert_eq!(c.gemm_peak_fraction, Ratio::ONE);
        assert_eq!(c.kernel_overhead, Time::ZERO);
        assert_eq!(c.dram_utilization.factor(Bytes::new(1.0)), Ratio::ONE);
    }

    #[test]
    fn datacenter_gpu_derates_small_dram_transfers() {
        let c = DeviceCalibration::datacenter_gpu();
        let small = c.dram_utilization.factor(Bytes::from_kib(8.0));
        let large = c.dram_utilization.factor(Bytes::from_gib(1.0));
        assert!(small.get() < 0.01);
        let mid = c.dram_utilization.factor(Bytes::from_mib(20.0));
        assert!((0.6..0.8).contains(&mid.get()), "decode kernels reach ~75%");
        assert!(large.get() > 0.8);
    }
}
