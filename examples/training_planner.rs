//! Training planner: sweep parallelism configurations for a model on a
//! fixed GPU budget and report the fastest one that fits device memory —
//! the §5.1 use case ("determine the best parallelism mapping or training
//! settings for an LLM model on a certain hardware system").
//!
//! Run with: `cargo run --example training_planner`

use optimus::prelude::*;
use optimus_suite as optimus;

fn main() {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = model::presets::gpt_175b();
    let gpu_budget = 64;
    let batch = 64;
    let capacity = cluster.accelerator().dram.capacity;

    println!(
        "planning {} on {} x {} (batch {batch})\n",
        model.name,
        gpu_budget,
        cluster.accelerator().name
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>8}  note",
        "dp-tp-pp-sp", "recompute", "memory (GB)", "time (s)", "MFU (%)"
    );

    let estimator = TrainingEstimator::new(&cluster);
    let mut best: Option<(String, f64)> = None;

    for tp in [1usize, 2, 4, 8] {
        for pp in [1usize, 2, 4, 8, 16] {
            if gpu_budget % (tp * pp) != 0 {
                continue;
            }
            let dp = gpu_budget / (tp * pp);
            if !model.layers.is_multiple_of(pp) || batch % dp != 0 {
                continue;
            }
            for (label, recompute, sp) in [
                ("none", RecomputeMode::None, false),
                ("selective", RecomputeMode::Selective, true),
                (
                    "full",
                    RecomputeMode::Full {
                        checkpoints_per_stage: None,
                    },
                    false,
                ),
            ] {
                let parallelism = Parallelism::new(dp, tp, pp).with_sp(sp);
                let cfg = TrainingConfig::new(model.clone(), batch, 2048, parallelism)
                    .with_recompute(recompute);
                let Ok(report) = estimator.estimate(&cfg) else {
                    continue;
                };
                let fits = report.memory.fits(capacity);
                let time = report.time_per_batch.secs();
                let note = if fits { "" } else { "out of memory" };
                println!(
                    "{:<12} {:>10} {:>12.1} {:>10.1} {:>8.1}  {note}",
                    parallelism.to_string(),
                    label,
                    report.memory.total().gb(),
                    time,
                    report.mfu * 100.0,
                );
                if fits && best.as_ref().is_none_or(|(_, t)| time < *t) {
                    best = Some((format!("{parallelism} ({label})"), time));
                }
            }
        }
    }

    match best {
        Some((config, time)) => {
            println!("\nbest feasible configuration: {config} at {time:.1} s/batch");
        }
        None => println!("\nno feasible configuration on this budget"),
    }
}
