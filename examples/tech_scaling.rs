//! Technology scaling: synthesize future accelerators at N12…N1 with the
//! µArch engine, optimize their resource allocation with the DSE loop, and
//! watch the training bottleneck migrate from compute to memory/network
//! (§5.3, Figs. 6–7).
//!
//! Run with: `cargo run --release --example tech_scaling`

use optimus::dse::{GradientDescent, SearchSpace};
use optimus::hw::memtech::DramTechnology;
use optimus::hw::nettech::{self, NvlinkGen};
use optimus::hw::NodeSpec;
use optimus::prelude::*;
use optimus::tech::{Allocation, ResourceBudget, TechNode, UArchEngine};
use optimus_suite as optimus;

fn training_time(cluster: &ClusterSpec) -> f64 {
    let case = refdata::case_gpt7b();
    let cfg = TrainingConfig::new(
        model::presets::gpt_7b(),
        case.batch,
        case.seq,
        case.parallelism(),
    )
    .with_recompute(RecomputeMode::Selective);
    TrainingEstimator::new(cluster)
        .estimate(&cfg)
        .map(|r| r.time_per_batch.secs())
        .unwrap_or(f64::INFINITY)
}

fn main() {
    let engine = UArchEngine::a100_at_n7();
    let budget = ResourceBudget::datacenter_gpu();
    let dram = DramTechnology::Hbm2e;

    println!("GPT-7B on 1024 synthesized GPUs (DP64-TP4-SP4-PP4), {dram} DRAM\n");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "node", "fp16 TF/s", "L2 (MiB)", "baseline s", "DSE s", "DSE alloc"
    );

    for &node in TechNode::all() {
        // Baseline: keep the A100-reference allocation at every node.
        let baseline_acc = engine.synthesize_at_node(node, dram);
        let peak = baseline_acc
            .peak(Precision::Fp16)
            .expect("fp16 always present")
            .tera();
        let l2 = baseline_acc
            .level(optimus::hw::MemoryLevelKind::L2)
            .expect("L2 present")
            .capacity
            .mib();
        let mk_cluster = |acc: Accelerator| {
            let node_spec = NodeSpec::new(acc, 8, NvlinkGen::Gen3.link());
            let inter = nettech::infiniband(
                "IB-100GBps",
                Bandwidth::from_gb_per_sec(100.0),
                node_spec.gpus_per_node,
            );
            ClusterSpec::new("tech-scaling", node_spec, inter)
        };
        let baseline_s = training_time(&mk_cluster(baseline_acc));

        // DSE: re-balance compute vs. SRAM area at this node.
        let result =
            GradientDescent::default().minimize(&SearchSpace::default(), |alloc: Allocation| {
                training_time(&mk_cluster(engine.synthesize(node, budget, alloc, dram)))
            });

        println!(
            "{:>5} {:>12.0} {:>12.1} {:>14.3} {:>12.3} {:>7.0}%/{:.0}%",
            node.to_string(),
            peak,
            l2,
            baseline_s,
            result.best.objective,
            result.best.allocation.compute.percent(),
            result.best.allocation.sram.percent(),
        );
    }

    println!("\nNote the saturation beyond N5: once compute outpaces HBM and the");
    println!("100 GB/s network, further logic scaling stops helping (paper Fig. 6).");
}
