//! Inference latency explorer: strong-scale Llama-2 models from 1 to 8
//! GPUs on A100 and H100 systems, and show the per-GEMM bound analysis
//! that explains why scaling is poor (§4.3, §6).
//!
//! Run with: `cargo run --example inference_latency`

use optimus::prelude::*;
use optimus_suite as optimus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let systems = [
        ("A100", hw::presets::dgx_a100_hdr_cluster()),
        ("H100", hw::presets::dgx_h100_ndr_cluster()),
    ];

    for (name, cluster) in &systems {
        println!("== {name}: Llama2-13B, B=1, 200 prompt + 200 generated ==");
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "TP", "total ms", "prefill", "decode", "memory", "comm"
        );
        for tp in [1usize, 2, 4, 8] {
            let cfg = InferenceConfig::nvidia_llama_benchmark(model::presets::llama2_13b(), tp);
            let r = InferenceEstimator::new(cluster).estimate(&cfg)?;
            println!(
                "{:>4} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                tp,
                r.total.millis(),
                r.prefill.millis(),
                r.decode.millis(),
                r.breakdown.memory.millis(),
                r.breakdown.communication.millis(),
            );
        }
        println!();
    }

    // Per-GEMM bound analysis on one decode layer (full context).
    let cluster = &systems[0].1;
    let cfg = InferenceConfig::nvidia_llama_benchmark(model::presets::llama2_13b(), 1);
    let r = InferenceEstimator::new(cluster).estimate(&cfg)?;
    println!("decode-layer GEMMs at full context (A100, TP=1):");
    for g in &r.decode_gemms {
        println!(
            "  {:<20} {:>10.1} us  {}",
            g.role.to_string(),
            g.time.micros(),
            g.bound
        );
    }
    println!(
        "\nweights {:.1} GB + KV-cache {:.2} GB per device",
        r.memory.weights.gb(),
        r.memory.kv_cache.gb()
    );
    Ok(())
}
