//! Memory planner: dissect the training memory footprint of large GPT
//! models under each activation-recomputation strategy and find the
//! smallest system each model fits on (§5.1, Fig. 4).
//!
//! Run with: `cargo run --example memory_planner`

use optimus::memory::{training_memory, TrainingMemorySpec};
use optimus::prelude::*;
use optimus_suite as optimus;

fn main() {
    let capacity = Bytes::from_gb(80.0);
    let models = [
        (
            model::presets::gpt_175b(),
            64usize,
            Parallelism::new(1, 8, 8),
        ),
        (model::presets::gpt_530b(), 280, Parallelism::new(1, 8, 35)),
        (model::presets::gpt_1008b(), 512, Parallelism::new(1, 8, 64)),
    ];

    for (model, batch, parallelism) in models {
        println!(
            "== {} on {} GPUs ({}) ==",
            model.name,
            parallelism.total_gpus(),
            parallelism
        );
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
            "recompute", "params GB", "optim GB", "activations", "total", "fits?"
        );
        for (label, recompute) in [
            ("none", RecomputeMode::None),
            ("selective", RecomputeMode::Selective),
            (
                "full",
                RecomputeMode::Full {
                    checkpoints_per_stage: None,
                },
            ),
        ] {
            let report = training_memory(
                &model,
                &TrainingMemorySpec {
                    batch,
                    seq: 2048,
                    parallelism,
                    schedule: PipelineSchedule::OneFOneB,
                    precision: Precision::Fp16,
                    recompute,
                },
            )
            .expect("configs divide evenly");
            println!(
                "{:>10} {:>10.1} {:>10.1} {:>12.1} {:>10.1} {:>6}",
                label,
                (report.parameters + report.gradients).gb(),
                report.optimizer.gb(),
                report.activations.gb(),
                report.total().gb(),
                if report.fits(capacity) { "yes" } else { "NO" },
            );
        }

        // How much tensor parallelism would "none" need to fit?
        let mut fit_tp = None;
        for tp in [8usize, 16, 32, 64] {
            let scaled = Parallelism::new(parallelism.dp, tp, parallelism.pp).with_sp(true);
            let spec = TrainingMemorySpec {
                batch,
                seq: 2048,
                parallelism: scaled,
                schedule: PipelineSchedule::OneFOneB,
                precision: Precision::Fp16,
                recompute: RecomputeMode::None,
            };
            if let Ok(r) = training_memory(&model, &spec) {
                if r.fits(capacity) {
                    fit_tp = Some((tp, scaled.total_gpus()));
                    break;
                }
            }
        }
        match fit_tp {
            Some((tp, gpus)) => println!(
                "without recomputation this model needs TP>={tp} (+SP), i.e. {gpus} GPUs\n"
            ),
            None => println!("without recomputation this model does not fit at any modeled TP\n"),
        }
    }
}
