//! Quickstart: estimate training time and inference latency for an LLM on
//! a modeled GPU cluster.
//!
//! Run with: `cargo run --example quickstart`

use optimus::prelude::*;
use optimus_suite as optimus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- describe the system: a DGX-A100 cluster with HDR InfiniBand ----
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    println!("cluster: {cluster}");

    // --- training: GPT-175B on 64 GPUs, Megatron-style ------------------
    let training = TrainingConfig::new(
        model::presets::gpt_175b(),
        64,   // global batch
        2048, // sequence length
        Parallelism::new(1, 8, 8).with_sp(true),
    )
    .with_recompute(RecomputeMode::Selective);

    let report = TrainingEstimator::new(&cluster).estimate(&training)?;
    println!("\n== GPT-175B training on 64 x A100 ==");
    println!("{report}");
    println!(
        "memory fits 80 GB: {}",
        report.memory.fits(Bytes::from_gb(80.0))
    );

    // --- inference: Llama2-13B on one A100 --------------------------------
    let serving = InferenceConfig::nvidia_llama_benchmark(model::presets::llama2_13b(), 1);
    let latency = InferenceEstimator::new(&cluster).estimate(&serving)?;
    println!("\n== Llama2-13B serving on 1 x A100 (200 prompt + 200 generated) ==");
    println!("{latency}");
    println!(
        "NVIDIA reports 3884 ms for this configuration; prediction error {:.1}%",
        optimus::relative_error_percent(latency.total.millis(), 3884.0)
    );

    Ok(())
}
