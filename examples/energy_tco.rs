//! Energy and performance-per-TCO analysis — the §7 future-work extension:
//! where does the power go during training vs. inference, and which GPU
//! generation minimizes dollars per unit of work?
//!
//! Run with: `cargo run --example energy_tco`

use optimus::energy::{CostModel, EnergyModel};
use optimus::prelude::*;
use optimus_suite as optimus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- energy anatomy of one GPT-175B training batch -------------------
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let cfg = TrainingConfig::new(
        model::presets::gpt_175b(),
        64,
        2048,
        Parallelism::new(1, 8, 8).with_sp(true),
    )
    .with_recompute(RecomputeMode::Selective);
    let report = TrainingEstimator::new(&cluster).estimate(&cfg)?;
    let energy = EnergyModel::a100_class().training_energy(&report, 64);

    println!("== GPT-175B training batch on 64 x A100 ==");
    println!("time {}", report.time_per_batch);
    println!("energy: {energy}");
    println!(
        "mean power {:.0} W/GPU",
        energy.mean_power(report.time_per_batch).watts() / 64.0
    );
    let cost = CostModel::a100_system().training_cost(&report, &energy, 64);
    println!("cost: {cost}");
    println!("  => {:.0} samples per dollar\n", cost.perf_per_usd(64.0));

    // --- inference: energy per generated token ----------------------------
    let serving = InferenceConfig::nvidia_llama_benchmark(model::presets::llama2_13b(), 1);
    let latency = InferenceEstimator::new(&cluster).estimate(&serving)?;
    let serve_energy = EnergyModel::a100_class().inference_energy(&latency, 1);
    println!("== Llama2-13B request (200+200 tokens) on 1 x A100 ==");
    println!("latency {}", latency.total);
    println!("energy: {serve_energy}");
    println!(
        "  => {:.2} J per generated token (DRAM share {:.0}%)",
        serve_energy.total().joules() / 200.0,
        100.0 * serve_energy.dram.joules() / serve_energy.total().joules()
    );
    let serve_cost = CostModel::a100_system().inference_cost(&latency, &serve_energy, 1);
    println!("cost: {serve_cost}");
    println!(
        "  => {:.0} generated tokens per dollar\n",
        serve_cost.perf_per_usd(200.0)
    );

    // --- cross-generation perf/TCO ----------------------------------------
    println!("== performance per TCO across generations ==");
    print!("{}", optimus_experiments::tco::render());
    Ok(())
}
