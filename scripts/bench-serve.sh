#!/usr/bin/env bash
# Runs the serving-simulator benchmarks in quick mode (the vendored
# criterion stub: 12 median-of-samples timings per bench) and snapshots
# the results as BENCH_serve.json at the repo root, so successive PRs can
# track simulator throughput. Usage:
#
#   scripts/bench-serve.sh [output.json]
#
# The JSON shape is { git_rev, date_utc, benches: { "<name>": "<median>" } }.
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_serve.json}"
raw=$(cargo bench -p optimus-bench --bench serve 2>&1 | grep '^bench:' || true)
if [ -z "$raw" ]; then
    echo "error: no bench output captured" >&2
    exit 1
fi

{
    printf '{\n'
    printf '  "git_rev": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "date_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "benches": {\n'
    # "bench: <name>    <value> <unit>" -> "<name>": "<value> <unit>"
    echo "$raw" | awk '{
        name = $2
        value = $3
        for (i = 4; i <= NF; i++) value = value " " $i
        rows[NR] = sprintf("    \"%s\": \"%s\"", name, value)
    }
    END {
        for (i = 1; i <= NR; i++) printf "%s%s\n", rows[i], (i < NR ? "," : "")
    }'
    printf '  }\n'
    printf '}\n'
} > "$out_file"

echo "wrote $out_file:"
cat "$out_file"
