//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses JSON
//! text back. Covers the workspace's needs: `to_string`,
//! `to_string_pretty`, `from_str`, and the [`Value`] type with `get()`.
//!
//! Numbers are stored as `f64` (like JavaScript); integers up to 2^53
//! round-trip exactly, and whole numbers are printed without a decimal
//! point so `usize` fields look like integers in the output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::Error;
pub use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// The value-tree stand-in cannot fail to serialize; the `Result` exists
/// for signature compatibility with the real `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON with two-space indentation.
///
/// # Errors
///
/// See [`to_string`]; the stand-in cannot fail.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Whole numbers in the `f64`-exact integer range print without a decimal
/// point; everything else uses Rust's shortest-roundtrip float formatting.
fn write_number(out: &mut String, n: f64) {
    use core::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no Inf/NaN; match serde_json's `null` for non-finite.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use core::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    /// Reads four hex digits starting at `at` as a UTF-16 code unit.
    fn read_hex4(&self, at: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let hex = core::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = match code {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow (UTF-16 pair, as serde_json
                                // accepts).
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1..self.pos + 3)
                                        != Some(b"\\u".as_slice())
                                    {
                                        return Err(Error::custom(
                                            "high surrogate without a following \\u escape",
                                        ));
                                    }
                                    let low = self.read_hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::custom(
                                            "expected a low surrogate after a high surrogate",
                                        ));
                                    }
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::custom("unexpected lone low surrogate"))
                                }
                                other => other,
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: the overwhelmingly common case.
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 code point. Validate a
                    // bounded window (a sequence is at most 4 bytes), not
                    // the whole remaining input — per-character tail
                    // validation made parsing quadratic in document size.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match core::str::from_utf8(window) {
                        Ok(s) => s,
                        // A trailing truncated sequence inside the window
                        // is fine as long as a whole code point precedes
                        // it; an invalid leading sequence is not.
                        Err(e) if e.valid_up_to() > 0 => {
                            core::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(Error::custom("invalid utf-8 in string")),
                    };
                    let c = valid.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&4.735f64).unwrap(), "4.735");
        assert_eq!(to_string(&64usize).unwrap(), "64");
        let x: f64 = from_str("1000000000.0").unwrap();
        assert_eq!(x, 1e9);
    }

    #[test]
    fn value_roundtrip() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x\n"], "b": null, "c": true}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Value::Null));
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn multibyte_strings_parse_in_linear_time() {
        // Mixed ASCII + multi-byte content across many strings: the
        // bounded-window decoder must stay exact (the old whole-tail
        // validation was quadratic in document size).
        let doc = format!(
            "[{}]",
            std::iter::repeat_n(r#""héllo wörld — ünïcode 😀 tail""#, 2000)
                .collect::<Vec<_>>()
                .join(",")
        );
        let v: Vec<String> = from_str(&doc).unwrap();
        assert_eq!(v.len(), 2000);
        assert!(v.iter().all(|s| s == "héllo wörld — ünïcode 😀 tail"));
        // A 4-byte character as the final string content exercises the
        // window's truncation edge (only the closing quote follows).
        let tail: String = from_str("\"x😀\"").unwrap();
        assert_eq!(tail, "x😀");
        // A 2-byte character directly followed by more multi-byte content
        // exercises the valid-prefix arm (the window splits a sequence).
        let split: String = from_str("\"é😀é😀\"").unwrap();
        assert_eq!(split, "é😀é😀");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let escaped: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped, "\u{1f600}");
        let raw: String = from_str(r#""😀""#).unwrap();
        assert_eq!(raw, "\u{1f600}");
        assert!(from_str::<String>(r#""\ud83d""#).is_err(), "lone high");
        assert!(from_str::<String>(r#""\ude00""#).is_err(), "lone low");
    }

    #[test]
    fn integer_targets_reject_bad_numbers() {
        assert!(from_str::<usize>("-1").is_err());
        assert!(from_str::<usize>("2.7").is_err());
        assert_eq!(from_str::<usize>("64").unwrap(), 64);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        // Beyond ±2^53 integers are not exactly representable in the f64
        // value tree; they must error, not saturate (i64::MAX + 1 here).
        assert!(from_str::<i64>("9223372036854775808").is_err());
        assert!(from_str::<u64>("18446744073709551616").is_err());
    }

    #[test]
    fn pretty_has_indentation() {
        let v: Value = from_str(r#"{"a": 1}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
