//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` generates visitor-based implementations against
//! serde's `Serializer`/`Deserializer` traits. This workspace vendors a
//! value-tree serde (see `vendor/serde`), so the derive here is much
//! simpler: it parses the container definition by hand (no `syn`/`quote`
//! in an offline build) and emits `to_value`/`from_value` implementations.
//!
//! Supported container shapes — exactly the ones used in this workspace:
//!
//! * structs with named fields;
//! * single-field tuple structs (newtypes), which serialize transparently
//!   like real serde newtype structs;
//! * enums with unit variants and struct variants (externally tagged).
//!
//! The only recognized container attribute is `#[serde(transparent)]`.
//! Any other `#[serde(...)]` attribute — container-, field-, or
//! variant-level — is a **compile error**, not a silent no-op, so a
//! derive that relies on real-serde behavior this stub lacks (renames,
//! skips, defaults, tagging modes, …) fails loudly at build time instead
//! of producing subtly wrong JSON. Generics are intentionally
//! unsupported; the workspace derives only on plain owned types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (value-tree) trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse(input);
    gen_serialize(&container)
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree) trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse(input);
    gen_deserialize(&container)
        .parse()
        .expect("generated impl parses")
}

/// A variant body: unit, a single unnamed field, or named fields.
enum VariantShape {
    Unit,
    Newtype,
    Named(Vec<String>),
}

/// The parsed container definition.
enum Container {
    /// `struct Name { a: A, b: B }`
    Struct {
        name: String,
        fields: Vec<String>,
        transparent: bool,
    },
    /// `struct Name(Inner);`
    Newtype { name: String },
    /// `enum Name { Unit, Struct { f: F } }`
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

/// Container-level `#[serde(...)]` arguments the stub implements.
const CONTAINER_ALLOWLIST: &[&str] = &["transparent"];
/// Field- and variant-level serde attributes are entirely unsupported.
const NO_ATTRS: &[&str] = &[];

/// Validates one attribute's bracket-group stream against the serde
/// allowlist for its position, returning the recognized arguments.
///
/// Non-serde attributes (doc comments, `derive`, `must_use`, …) pass
/// through untouched as an empty list. A `#[serde(...)]` argument outside
/// `allowed` panics — which surfaces as a compile error at the derive
/// site — so real-serde behaviors the stub lacks (renames, skips,
/// defaults, tagging modes, …) fail loudly instead of silently emitting
/// wrong JSON.
fn serde_attr_args(attr: TokenStream, allowed: &[&str], position: &str) -> Vec<String> {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    let args_group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!(
            "malformed {position} attribute `#[serde ...]` (found {other:?}): the vendored \
             serde_derive stub expects `#[serde(arg, ...)]`"
        ),
    };
    let mut args = Vec::new();
    for token in args_group.stream() {
        match token {
            TokenTree::Ident(id) => {
                let arg = id.to_string();
                assert!(
                    allowed.contains(&arg.as_str()),
                    "unsupported {position} attribute `#[serde({arg})]`: the vendored \
                     serde_derive stub implements only {allowed:?} at this position; extend \
                     the stub in vendor/serde_derive or drop the attribute"
                );
                args.push(arg);
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!(
                "unsupported {position} attribute syntax `#[serde({other} ...)]`: the \
                 vendored serde_derive stub implements only bare arguments ({allowed:?})"
            ),
        }
    }
    args
}

fn parse(input: TokenStream) -> Container {
    let mut tokens = input.into_iter().peekable();
    let mut transparent = false;

    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let args = serde_attr_args(g.stream(), CONTAINER_ALLOWLIST, "container");
                    if args.iter().any(|a| a == "transparent") {
                        transparent = true;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Skip a `(crate)`-style restriction if present.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected container name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stub does not support generic containers");
    }

    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Container::Struct {
                name,
                fields: parse_named_fields(g.stream()),
                transparent,
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_top_level_fields(g.stream());
            assert!(
                arity == 1,
                "tuple struct `{name}` has {arity} fields; only newtypes are supported"
            );
            Container::Newtype { name }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Container::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        (k, other) => panic!("unsupported container `{k}` body: {other:?}"),
    }
}

/// Parses `attr* vis? ident : Type ,` sequences, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    serde_attr_args(g.stream(), NO_ATTRS, "field");
                }
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {
                    tokens.next();
                }
            }
        }
    }
    fields
}

/// Counts comma-separated fields of a tuple-struct body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_token = true,
        }
    }
    fields + usize::from(saw_token)
}

/// Parses `attr* Ident body? ,` variant sequences.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    serde_attr_args(g.stream(), NO_ATTRS, "variant");
                }
                continue;
            }
            _ => {}
        }
        let variant = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                assert!(
                    arity == 1,
                    "tuple enum variant `{variant}` has {arity} fields; only newtype \
                     variants are supported"
                );
                tokens.next();
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        variants.push((variant, shape));
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
    }
    variants
}

fn named_to_value(fields: &[String], access_prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

fn named_from_value(fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value({source}.field_or_null(\"{f}\"))?"))
        .collect();
    format!("{{ {} }}", inits.join(", "))
}

fn gen_serialize(container: &Container) -> String {
    match container {
        Container::Struct {
            name,
            fields,
            transparent,
        } => {
            let body = if *transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                named_to_value(fields, "self.")
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Container::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }} }}"
        ),
        Container::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    ),
                    VariantShape::Newtype => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))])"
                    ),
                    VariantShape::Named(fields) => {
                        let bindings = fields.join(", ");
                        let inner = named_to_value(fields, "");
                        format!(
                            "{name}::{v} {{ {bindings} }} => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{v}\"), {inner})])"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ \
                 match self {{ {} }} }} }}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(container: &Container) -> String {
    match container {
        Container::Struct {
            name,
            fields,
            transparent,
        } => {
            let body = if *transparent && fields.len() == 1 {
                format!(
                    "::core::result::Result::Ok(Self {{ {}: \
                     ::serde::Deserialize::from_value(__v)? }})",
                    fields[0]
                )
            } else {
                format!(
                    "::core::result::Result::Ok(Self {})",
                    named_from_value(fields, "__v")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}"
            )
        }
        Container::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::Error> {{ \
             ::core::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?)) }} }}"
        ),
        Container::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => unit_arms.push(format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v})"
                    )),
                    VariantShape::Newtype => tagged_arms.push(format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?))"
                    )),
                    VariantShape::Named(fields) => tagged_arms.push(format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v} {})",
                        named_from_value(fields, "__inner")
                    )),
                }
            }
            let unit_match = format!(
                "match __s.as_str() {{ {}, _ => ::core::result::Result::Err(\
                 ::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __s))) }}",
                if unit_arms.is_empty() {
                    "\"\" if false => ::core::result::Result::Err(::serde::Error::custom(\"\"))"
                        .to_owned()
                } else {
                    unit_arms.join(", ")
                }
            );
            let tagged_match = format!(
                "match __tag.as_str() {{ {}, _ => ::core::result::Result::Err(\
                 ::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __tag))) }}",
                if tagged_arms.is_empty() {
                    "\"\" if false => ::core::result::Result::Err(::serde::Error::custom(\"\"))"
                        .to_owned()
                } else {
                    tagged_arms.join(", ")
                }
            );
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{ \
                 match __v {{ \
                 ::serde::Value::Str(__s) => {unit_match}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1); \
                 {tagged_match} }}, \
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected a variant name or single-key object for enum {name}\")) \
                 }} }} }}"
            )
        }
    }
}
