//! Offline stand-in for `criterion`.
//!
//! Implements the `Criterion::bench_function` / `Bencher::iter` surface
//! plus the `criterion_group!`/`criterion_main!` macros, backed by a
//! simple median-of-samples timer instead of criterion's statistical
//! machinery. Good enough to compare orders of magnitude between runs and
//! to keep `cargo bench` green offline; swap the manifest back to the
//! real crate for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 12 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark (builder form,
    /// matching `criterion::Criterion::sample_size`).
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    /// Registers and immediately runs one benchmark, printing its median
    /// per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            per_iter: Vec::with_capacity(self.samples),
        };
        for _ in 0..self.samples {
            f(&mut bencher);
        }
        let median = bencher.median();
        println!("bench: {id:<44} {}", format_duration(median));
        self
    }
}

/// Hands the closure under measurement to the driver.
pub struct Bencher {
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of the closure, adaptively choosing an iteration
    /// count so fast closures are measured over a meaningful window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for ~2 ms per sample, capped for slow closures.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.per_iter.push(start.elapsed() / iters as u32);
    }

    fn median(&mut self) -> Duration {
        if self.per_iter.is_empty() {
            return Duration::ZERO;
        }
        self.per_iter.sort();
        self.per_iter[self.per_iter.len() / 2]
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a function running a group of benchmarks, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(1500)).ends_with("ms"));
    }
}
