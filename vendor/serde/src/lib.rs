//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serialization framework that is **API-compatible with the subset
//! of serde this codebase uses**: `#[derive(Serialize, Deserialize)]`,
//! `#[serde(transparent)]`, and the `serde::Serialize` /
//! `serde::de::DeserializeOwned` bounds taken by `serde_json`.
//!
//! Instead of serde's zero-copy visitor architecture, this stand-in
//! round-trips everything through a [`Value`] tree — entirely adequate for
//! the configuration and report types of an analytical model, and two
//! orders of magnitude simpler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format of the stand-in.
///
/// Object fields keep insertion order (like `serde_json`'s
/// `preserve_order` feature), so serialized structs list fields in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A shared `Null` to return references to.
static NULL: Value = Value::Null;

impl Value {
    /// Looks up a key of an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key, returning `Null` when absent — how the derive
    /// treats missing fields, so `Option` fields deserialize to `None`.
    #[must_use]
    pub fn field_or_null(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// The elements of an array value (`None` for non-arrays), matching
    /// `serde_json::Value::as_array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric content of a number value (`None` otherwise), matching
    /// `serde_json::Value::as_f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content of a bool value (`None` otherwise), matching
    /// `serde_json::Value::as_bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is JSON `null`, matching
    /// `serde_json::Value::is_null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string content of a string value (`None` otherwise), matching
    /// `serde_json::Value::as_str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's type for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl core::fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses an instance out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization-side re-exports mirroring `serde::de`.
pub mod de {
    pub use crate::Deserialize;
    /// In real serde `DeserializeOwned` lifts the `Deserialize<'de>`
    /// lifetime; the stand-in's `Deserialize` already owns everything.
    pub use crate::Deserialize as DeserializeOwned;
    pub use crate::Error;
}

/// Serialization-side re-exports mirroring `serde::ser`.
pub mod ser {
    pub use crate::Error;
    pub use crate::Serialize;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    #[allow(clippy::cast_possible_truncation)]
                    Value::Num(n) => Ok(*n as $ty),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            /// Like real `serde_json`, integer targets reject fractional
            /// and out-of-range numbers instead of truncating them. The
            /// value-tree stores numbers as `f64`, so integers are also
            /// confined to the exactly-representable ±2^53 range (`MAX as
            /// f64` rounds up for 64-bit types, which would otherwise let
            /// out-of-range values saturate through the cast).
            fn from_value(v: &Value) -> Result<Self, Error> {
                const EXACT_F64_INT: f64 = 9_007_199_254_740_992.0; // 2^53
                match v {
                    Value::Num(n)
                        if n.fract() == 0.0
                            && n.abs() <= EXACT_F64_INT
                            && *n >= <$ty>::MIN as f64
                            && *n <= <$ty>::MAX as f64 =>
                    {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        Ok(*n as $ty)
                    }
                    Value::Num(n) => Err(Error::custom(format!(
                        concat!("number {} does not fit ", stringify!($ty)),
                        n
                    ))),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    /// Maps serialize as JSON objects; keys must serialize to strings
    /// (plain strings or unit enum variants), as in `serde_json`.
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("map key must serialize to a string, got {}", other.kind()),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(v.get("b"), None);
        assert_eq!(v.field_or_null("b"), &Value::Null);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3usize).to_value(), Value::Num(3.0));
        assert_eq!(Option::<usize>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<usize>::from_value(&Value::Num(3.0)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1.5f64, 2.5f64).to_value();
        let back: (f64, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1.5, 2.5));
    }
}
