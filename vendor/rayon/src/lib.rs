//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset the sweep engine uses —
//! `into_par_iter()` / `par_iter()` followed by `map(..).collect()` — on
//! top of `std::thread::scope`. Work is split into contiguous chunks, one
//! per worker, and results are concatenated **in input order**, so a
//! parallel map returns exactly what the sequential map would (the
//! determinism property `optimus-sweep` tests rely on).
//!
//! Thread count comes from `RAYON_NUM_THREADS` when set (the same
//! environment variable the real crate honors), else from
//! `std::thread::available_parallelism`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;

std::thread_local! {
    /// Thread count forced by an enclosing [`ThreadPool::install`] call.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads a parallel iterator will use.
#[must_use]
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Error building a thread pool (the stub cannot actually fail; the type
/// exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl core::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for explicit pool sizes.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (environment-driven) size.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = default sizing).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stub; the `Result` mirrors the real signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker pool: inside [`ThreadPool::install`], parallel
/// iterators use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing parallel
    /// iterators started from the calling thread. The previous setting is
    /// restored even if `f` panics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(|c| c.replace(self.num_threads)));
        f()
    }

    /// This pool's configured thread count (0 = default sizing).
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel-iterator traits and adapters.
pub mod iter {
    use super::current_num_threads;

    /// Conversion of an owned collection into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// The parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// Conversion of `&collection` into a parallel iterator of references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: Send;
        /// The parallel iterator.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// An eager parallel iterator over owned items.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    impl<I: Send> ParIter<I> {
        /// Maps each element through `f` on the worker pool.
        pub fn map<O, F>(self, f: F) -> MapParIter<I, F>
        where
            O: Send,
            F: Fn(I) -> O + Sync,
        {
            MapParIter {
                items: self.items,
                f,
            }
        }

        /// Number of elements.
        #[must_use]
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// Whether the iterator is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// The `map` adapter; terminal `collect` runs the pool.
    pub struct MapParIter<I, F> {
        items: Vec<I>,
        f: F,
    }

    impl<I, O, F> MapParIter<I, F>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        /// Runs the map on the worker pool and collects results in input
        /// order.
        pub fn collect<C: FromParallelIterator<O>>(self) -> C {
            C::from_ordered_vec(parallel_map(self.items, &self.f))
        }
    }

    /// Collections buildable from an ordered parallel map result.
    pub trait FromParallelIterator<O> {
        /// Builds the collection from results already in input order.
        fn from_ordered_vec(items: Vec<O>) -> Self;
    }

    impl<O> FromParallelIterator<O> for Vec<O> {
        fn from_ordered_vec(items: Vec<O>) -> Self {
            items
        }
    }

    /// Chunked order-preserving parallel map.
    fn parallel_map<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = items.len();
        let workers = current_num_threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Split into contiguous chunks, one per worker; keep chunk index so
        // results can be reassembled in input order.
        let chunk_size = n.div_ceil(workers);
        let mut chunks: Vec<(usize, Vec<I>)> = Vec::with_capacity(workers);
        let mut rest = items;
        let mut index = 0;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(chunk_size));
            chunks.push((index, rest));
            rest = tail;
            index += 1;
        }
        let mut results: Vec<(usize, Vec<O>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(i, chunk)| {
                    scope.spawn(move || (i, chunk.into_iter().map(f).collect::<Vec<O>>()))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().flat_map(|(_, v)| v).collect()
    }
}

/// The glob import used by rayon callers.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
    pub use crate::ParallelIterator;
}

pub use iter::{IntoParallelIterator, IntoParallelRefIterator};

/// Alias so callers can name the iterator family the way real rayon does.
pub use iter::ParIter as ParallelIterator;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let sequential: Vec<usize> = input.iter().map(|x| x * 3).collect();
        let parallel: Vec<usize> = input.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn par_iter_over_references() {
        let input: Vec<String> = (0..64).map(|i| format!("x{i}")).collect();
        let lens: Vec<usize> = input.par_iter().map(String::len).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[0], 2);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        let nested: Vec<usize> = pool.install(|| {
            (0..100usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x + 1)
                .collect()
        });
        assert_eq!(nested[99], 100);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
