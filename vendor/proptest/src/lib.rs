//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, ranges, tuples, `prop_map`, and
//! `collection::vec` — over a deterministic per-test RNG.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! build: no shrinking (a failing case reports its inputs via the normal
//! assertion message instead of a minimized counterexample) and a fixed
//! seed derived from the test name (runs are exactly reproducible; there
//! is no failure-persistence file).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Number of cases each property runs when not overridden by
/// `ProptestConfig::with_cases`.
pub const DEFAULT_CASES: u32 = 64;

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each property gets a
    /// stable, independent stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f` (the `prop_map` combinator).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union of at least one option.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty strategy range");
        a + (b - a) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty strategy range");
                a + rng.below((b - a) as u64 + 1) as $ty
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Vectors of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Runs a block of property functions; see the crate docs for the
/// supported grammar (a `#![proptest_config(..)]` header followed by
/// `fn name(pat in strategy, ...) { .. }` items).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (alias of `assert!` here: the
/// stand-in has no shrinking machinery to hook into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strategy:expr),+ $(,)? ) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let s = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn oneof_picks_all_options() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end.
        #[test]
        fn macro_runs(x in 0usize..100, (a, b) in (0.0f64..1.0, 0.0f64..1.0)) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
        }
    }
}
