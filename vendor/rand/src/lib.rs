//! Offline stand-in for `rand` 0.8.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`distributions::Exp`] — the subset used by the design-space
//! exploration and serving-simulator crates. The generator is
//! xoshiro256++ seeded through SplitMix64, so identical seeds produce
//! identical sequences on every platform (the property the DSE and
//! serving determinism tests rely on).
//!
//! The real ecosystem splits the exponential distribution into
//! `rand_distr`; this stand-in hosts it under [`distributions`] to keep
//! the workspace on a single vendored crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to draw a uniform sample from a word source.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// Matches the `rand 0.8` signature: half-open (`a..b`) and inclusive
    /// (`a..=b`) ranges over integers and floats.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in `[0, 1)` from one 64-bit word (53-bit mantissa path).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        // The closed endpoint is hit with probability 2^-53: close enough
        // to the real crate's inclusive sampling for analytical use.
        a + (b - a) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b - a) as u64 + 1;
                a + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// Non-uniform distributions (the `rand_distr` subset this workspace
/// uses).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A source of samples of `T` driven by a word source.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The exponential distribution `Exp(λ)` — interarrival times of a
    /// Poisson process with rate `λ` events per unit time.
    ///
    /// Sampled by inversion: `-ln(1 - U) / λ` with `U` uniform in
    /// `[0, 1)`, so the result is finite and non-negative for every
    /// generator word.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// An exponential distribution with rate `lambda`.
        ///
        /// # Panics
        ///
        /// Panics unless `lambda` is finite and strictly positive.
        #[must_use]
        pub fn new(lambda: f64) -> Self {
            assert!(
                lambda.is_finite() && lambda > 0.0,
                "Exp rate must be finite and positive, got {lambda}"
            );
            Self { lambda }
        }

        /// The rate parameter λ.
        #[must_use]
        pub fn rate(&self) -> f64 {
            self.lambda
        }

        /// The mean `1/λ`.
        #[must_use]
        pub fn mean(&self) -> f64 {
            1.0 / self.lambda
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 1 - U ∈ (0, 1], so the log is finite and ≤ 0.
            -(1.0 - unit_f64(rng.next_u64())).ln() / self.lambda
        }
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stand-in's default generator: xoshiro256++ (the real `StdRng`
    /// is ChaCha12; any fixed high-quality stream works for tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn exp_samples_are_positive_with_the_right_mean() {
        use super::distributions::{Distribution, Exp};
        let mut rng = StdRng::seed_from_u64(11);
        let lambda = 4.0;
        let exp = Exp::new(lambda);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exp.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!(
            (mean - exp.mean()).abs() < 0.01,
            "mean {mean} vs {}",
            exp.mean()
        );
    }

    #[test]
    fn exp_is_deterministic_for_fixed_seed() {
        use super::distributions::{Distribution, Exp};
        let exp = Exp::new(0.5);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..32 {
            assert_eq!(exp.sample(&mut a).to_bits(), exp.sample(&mut b).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn exp_rejects_non_positive_rate() {
        let _ = super::distributions::Exp::new(0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0f64..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0f64..1.0)).collect();
        assert_ne!(xs, ys);
    }
}
